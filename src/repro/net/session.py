"""End-to-end RAN assembly and experiment drivers.

:class:`RanSystem` wires the full Fig 2 topology — UEs, air link, gNB,
UPF, ping server — over one duplexing scheme, and offers the experiment
entry points the benchmarks use:

- :meth:`RanSystem.run_downlink` / :meth:`RanSystem.run_uplink` — the
  one-way latency measurements of Fig 6 (uniform arrivals, per-packet
  latency + budget decomposition);
- :meth:`RanSystem.run_ping` — the full ping round trip of Fig 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.faults.injectors import FaultHarness, StalledRadioHead
from repro.faults.plan import FaultPlan
from repro.mac.harq import HarqFeedbackModel, HarqProcessPool
from repro.mac.opportunities import Window
from repro.mac.pdcch import PdcchModel
from repro.mac.scheduler import UlGrant
from repro.mac.scheme import DuplexingScheme
from repro.mac.types import AccessMode, Direction
from repro.net.core_network import PingServer, Upf
from repro.net.gnb import Gnb
from repro.net.link import AirLink
from repro.net.probes import LatencyProbe
from repro.net.ue import Ue
from repro.phy.channel import Channel
from repro.phy.ofdm import Carrier
from repro.phy.timebase import tc_from_us
from repro.radio.radio_head import RadioHead
from repro.sim.engine import Simulator
from repro.sim.resources import CpuResource
from repro.sim.rng import RngRegistry
from repro.sim.slotted import SlottedUplink, ineligibility
from repro.sim.trace import Tracer
from repro.stack.packets import LatencySource, Packet, PacketKind
from repro import calibration

__all__ = ["RanConfig", "PingResult", "RanSystem"]


@dataclass
class RanConfig:
    """Knobs for one simulated deployment."""

    bandwidth_mhz: int = 20
    access: AccessMode = AccessMode.GRANT_FREE
    n_ues: int = 1
    payload_bytes: int = 32
    mcs_index: int = 16
    seed: int = 1
    gnb_radio_head: RadioHead | None = None
    ue_radio_head: RadioHead | None = None
    channel: Channel | None = None
    margin_tc: int | None = None
    trace: bool = False
    ue_processing_scale: float | None = None
    gnb_processing_scale: float = 1.0
    sr_period_tc: int = 0   #: PUCCH SR periodicity (0 = any UL instant)
    sr_offset_tc: int = 0
    #: Cores for the gNB stack; None = uncontended processing.  With a
    #: finite count, layer work queues behind the cores and effective
    #: processing grows with load (§7's multi-UE caveat).
    gnb_cpu_cores: int | None = None
    #: DL scheduling priority per UE id (lower = served first; absent
    #: UEs default to 0).  Used to protect URLLC traffic from eMBB.
    ue_priorities: dict[int, int] | None = None
    #: HARQ processes per direction (TS 38.321 allows up to 16).  With
    #: feedback-timed HARQ a retransmission waits for the NACK to come
    #: back over the opposite timeline; set ``harq_feedback=False`` for
    #: the older idealised next-window retransmission.
    harq_processes: int = 16
    harq_feedback: bool = True
    #: CORESET size per control occasion; None = unlimited control
    #: capacity.  Small values expose PDCCH blocking at scale (§9).
    pdcch_cces: int | None = None
    #: DCI aggregation level (URLLC uses 8-16 for control reliability).
    aggregation_level: int = 8
    #: Deterministic fault schedule (repro.faults); None or an empty
    #: plan leaves every layer untouched — bit-identical to the
    #: fault-free build.  See docs/ROBUSTNESS.md.
    fault_plan: FaultPlan | None = None
    #: Execution engine: "scalar" always builds per-UE objects,
    #: "slotted" runs the population executor (repro.sim.slotted —
    #: grant-free uplink only, raises for unsupported configs), "auto"
    #: picks slotted when eligible and ``n_ues >= slotted_threshold``.
    #: Both engines are bit-identical (see docs/PERFORMANCE.md).
    engine: str = "auto"
    #: Population size at which "auto" switches to the slotted engine.
    slotted_threshold: int = 256
    #: Fraction of each window's transport block available to one UE's
    #: configured grant.  None keeps the historical default
    #: (1/n_ues for grant-free); large populations set 1.0 to model
    #: dedicated per-UE CG resources (see docs/CAMPAIGNS.md).
    cg_share: float | None = None


@dataclass
class PingResult:
    """One completed ping round trip."""

    request: Packet
    reply: Packet

    @property
    def rtt_tc(self) -> int:
        assert self.reply.delivered_tc is not None
        return self.reply.delivered_tc - self.request.created_tc


class RanSystem:
    """A complete simulated 5G deployment over one duplexing scheme."""

    def __init__(self, scheme: DuplexingScheme,
                 config: RanConfig | None = None):
        self.scheme = scheme
        self.config = config or RanConfig()
        self.sim = Simulator()
        self.tracer = Tracer(enabled=self.config.trace)
        self.rngs = RngRegistry(self.config.seed)
        self.carrier = Carrier(scheme.numerology,
                               self.config.bandwidth_mhz)

        self.dl_probe = LatencyProbe("dl")
        self.ul_probe = LatencyProbe("ul")
        self.ping_results: list[PingResult] = []
        self._pending_pings: dict[int, Packet] = {}
        # Per-system id sequence: packet ids (and therefore traces)
        # depend only on this system's own history, never on other
        # simulations run earlier in the same process.
        self._packet_ids = itertools.count(1)

        # Compile the fault plan (if any) before wiring components so
        # every layer can be handed its injector hook.  All fault draws
        # come from dedicated "fault.*" streams; with no plan every hook
        # below is None and the wiring is exactly the fault-free one.
        self.faults: FaultHarness | None = None
        if self.config.fault_plan:
            self.faults = FaultHarness(self.sim, self.tracer, self.rngs,
                                       self.config.fault_plan)
        gnb_radio_head = self.config.gnb_radio_head
        ue_radio_head = self.config.ue_radio_head
        if self.faults is not None and self.faults.stalls_radio:
            if gnb_radio_head is not None:
                gnb_radio_head = StalledRadioHead(gnb_radio_head,
                                                  self.faults)
            if ue_radio_head is not None:
                ue_radio_head = StalledRadioHead(ue_radio_head,
                                                 self.faults)
        self._gnb_radio_head = gnb_radio_head
        self._ue_radio_head = ue_radio_head

        self.link = AirLink(
            self.sim, self.tracer,
            self.rngs.stream("link"),
            channel=self.config.channel,
            fault_gate=(self.faults.link_fate
                        if self.faults is not None else None))
        self.upf = Upf(
            self.sim, self.tracer, self.rngs.stream("upf"),
            outage=(self.faults.upf_hold_tc
                    if self.faults is not None else None))
        self.server = PingServer(self.sim, self.tracer,
                                 packet_ids=self._packet_ids)

        symbol_tc = scheme.numerology.slot_duration_tc // 14
        self.harq_pool: HarqProcessPool | None = None
        self._dl_feedback: HarqFeedbackModel | None = None
        self._ul_feedback: HarqFeedbackModel | None = None
        if self.config.harq_feedback:
            self.harq_pool = HarqProcessPool(self.config.harq_processes)
            self._dl_feedback = HarqFeedbackModel(scheme,
                                                  feedback_for="dl")
            self._ul_feedback = HarqFeedbackModel(scheme,
                                                  feedback_for="ul")
        self.gnb_cpu = None
        if self.config.gnb_cpu_cores is not None:
            self.gnb_cpu = CpuResource(self.sim,
                                       self.config.gnb_cpu_cores,
                                       name="gnb-cpu")
        self.pdcch: PdcchModel | None = None
        if self.config.pdcch_cces is not None:
            self.pdcch = PdcchModel(n_cces=self.config.pdcch_cces)
        self.gnb = Gnb(
            self.sim, self.tracer, scheme, self.carrier,
            self.rngs.stream("gnb"),
            radio_head=self._gnb_radio_head,
            cpu=self.gnb_cpu,
            layer_delays=calibration.gnb_layer_delays(
                self.config.gnb_processing_scale),
            mcs_index=self.config.mcs_index,
            margin_tc=self.config.margin_tc,
            grant_air_time_tc=symbol_tc,
            ue_grant_turnaround_tc=self._ue_turnaround_tc(),
            on_ul_delivered=self._ul_at_gnb_top,
            on_dl_transmission=self._dl_over_air,
            on_ul_grant=self._grant_over_air,
            harq_pool=self.harq_pool,
            pdcch=self.pdcch,
            aggregation_level=self.config.aggregation_level,
            processing_dilation=(self.faults.processing_dilation
                                 if self.faults is not None else None),
            rlc_fault_gate=(self.faults.rlc_drop
                            if self.faults is not None else None),
        )
        # Configured-grant share (grant-free): historical default splits
        # the transport block evenly; config.cg_share overrides it (1.0
        # models dedicated per-UE CG resources at scale).  Resolved once
        # so the scalar and slotted engines use the identical value.
        grant_free = self.config.access is AccessMode.GRANT_FREE
        if self.config.cg_share is not None:
            self.cg_share = self.config.cg_share
        elif grant_free:
            self.cg_share = 1.0 / self.config.n_ues
        else:
            self.cg_share = 1.0

        self.slotted: SlottedUplink | None = None
        self.ues: dict[int, Ue] = {}
        if self._use_slotted():
            # Population mode: no per-UE objects at all — the mirror
            # executor owns the ue<N> streams and the UL probe.
            self.slotted = SlottedUplink(self)
            self.ul_probe = self.slotted.probe
        else:
            for ue_id in range(1, self.config.n_ues + 1):
                self._build_ue(ue_id)
        self.gnb.start()

    def _use_slotted(self) -> bool:
        engine = self.config.engine
        if engine not in ("auto", "scalar", "slotted"):
            raise ValueError(
                f"engine must be 'auto', 'scalar' or 'slotted', "
                f"got {engine!r}")
        if engine == "scalar":
            return False
        if engine == "slotted":
            return True  # SlottedUplink raises if the config is out
        return (self.config.n_ues >= self.config.slotted_threshold
                and ineligibility(self) is None)

    @property
    def engine_mode(self) -> str:
        """Engine actually running: "slotted" or "scalar"."""
        return "slotted" if self.slotted is not None else "scalar"

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _ue_tx_delays(self):
        scale = self.config.ue_processing_scale
        if scale is None:
            return calibration.ue_tx_layer_delays()
        return calibration.ue_tx_layer_delays(scale)

    def _ue_rx_delays(self):
        scale = self.config.ue_processing_scale
        if scale is None:
            return calibration.ue_rx_layer_delays()
        return calibration.ue_rx_layer_delays(scale)

    def _ue_turnaround_tc(self) -> int:
        """Time the scheduler must leave between grant delivery and the
        granted window so the UE can make it (§4's margin, UE side)."""
        phy_us = self._ue_tx_delays()["PHY"].mean_us
        radio_us = 0.0
        if self.config.ue_radio_head is not None:
            radio_us = self.config.ue_radio_head.mean_one_way_us(
                self.carrier.samples_per_slot())
        return tc_from_us(2.0 * (phy_us + radio_us))

    def _build_ue(self, ue_id: int) -> None:
        grant_free = self.config.access is AccessMode.GRANT_FREE
        priority = (self.config.ue_priorities or {}).get(ue_id, 0)
        self.gnb.register_ue(ue_id, grant_free, self.cg_share,
                             priority=priority)
        radio_submission = None
        if self._ue_radio_head is not None:
            radio_submission = self._ue_radio_head.tx_latency_us
        ue = Ue(
            self.sim, self.tracer, ue_id, self.scheme, self.carrier,
            self.rngs.stream(f"ue{ue_id}"),
            access=self.config.access,
            tx_layer_delays=self._ue_tx_delays(),
            rx_layer_delays=self._ue_rx_delays(),
            radio_submission_us=radio_submission,
            sr_period_tc=self.config.sr_period_tc,
            sr_offset_tc=self.config.sr_offset_tc,
            cg_capacity_bytes=(
                lambda window, uid=ue_id:
                self.gnb.scheduler.cg_capacity_bytes(uid, window)),
            on_ul_block=self._ul_over_air,
            on_sr=self._sr_over_air,
            on_delivered=self._dl_at_ue_app,
            rlc_fault_gate=(self.faults.rlc_drop
                            if self.faults is not None else None),
        )
        self.ues[ue_id] = ue

    # ------------------------------------------------------------------
    # air crossings
    # ------------------------------------------------------------------
    def _dl_over_air(self, window: Window, packets: list[Packet]) -> None:
        completion = self.sim.now
        release_event = None
        if self.harq_pool is not None and self._dl_feedback is not None:
            # The process frees once the ACK/NACK makes it back over
            # the UL timeline (k1 + PUCCH occasion + decode).
            release_at = self._dl_feedback.feedback_time(completion)
            release_event = self.sim.schedule(release_at,
                                              self.harq_pool.release)
        by_ue: dict[int, list[Packet]] = {}
        for packet in packets:
            by_ue.setdefault(packet.ue_id, []).append(packet)
        saw_dtx = False
        for ue_id, block in by_ue.items():
            self.link.transmit(
                block, completion,
                deliver=self.ues[ue_id].receive_dl_block,
                retransmit=lambda pkts, c=completion:
                    self._dl_nack(pkts, c),
            )
            saw_dtx = saw_dtx or self.link.last_fault_fate == "dtx"
        if saw_dtx and release_event is not None:
            # Injected DTX: the feedback never arrives, so the process
            # is only freed at the DTX detection timeout.
            release_event.cancel()
            self.sim.schedule(
                self._dl_feedback.dtx_detection_time(completion),
                self.harq_pool.release)
            self.harq_pool.record_dtx()

    def _dl_nack(self, packets: list[Packet], completion: int) -> None:
        """A DL block failed: retransmission waits for the NACK (or,
        for an injected DTX, for the detection timeout)."""
        if self._dl_feedback is None:
            self.gnb.scheduler.requeue_dl(packets)
            return
        if self.link.last_fault_fate == "dtx":
            feedback_at = self._dl_feedback.dtx_detection_time(completion)
        else:
            feedback_at = self._dl_feedback.feedback_time(completion)
        for packet in packets:
            # Awaiting feedback is protocol-imposed waiting.
            packet.charge(LatencySource.PROTOCOL,
                          feedback_at - completion)
        self.sim.schedule(feedback_at, self.gnb.scheduler.requeue_dl,
                          packets)

    def _ul_over_air(self, ue_id: int, window: Window,
                     packets: list[Packet]) -> None:
        completion = self.sim.now
        if self.config.access is AccessMode.GRANT_FREE:
            used = sum(p.wire_bytes for p in packets)
            self.gnb.scheduler.account_cg_window(ue_id, window, used)
        self.link.transmit(
            packets, completion,
            deliver=lambda block: self.gnb.receive_ul_block(
                ue_id, window, block),
            retransmit=lambda pkts, c=completion:
                self._ul_nack(ue_id, pkts, c),
        )

    def _ul_nack(self, ue_id: int, packets: list[Packet],
                 completion: int) -> None:
        """A UL block failed: the UE learns via DL feedback."""
        if self._ul_feedback is None:
            self.ues[ue_id].retransmit_uplink(packets)
            return
        if self.link.last_fault_fate == "dtx":
            feedback_at = self._ul_feedback.dtx_detection_time(completion)
        else:
            feedback_at = self._ul_feedback.feedback_time(completion)
        for packet in packets:
            packet.charge(LatencySource.PROTOCOL,
                          feedback_at - completion)
        self.sim.schedule(feedback_at,
                          self.ues[ue_id].retransmit_uplink, packets)

    def _sr_over_air(self, ue_id: int, bsr_bytes: int) -> None:
        self.gnb.receive_sr(ue_id, bsr_bytes)

    def _grant_over_air(self, grant: UlGrant) -> None:
        """PDCCH carrying the grant reaches the UE after its air time."""
        air_tc = self.gnb.scheduler.grant_air_time_tc
        self.sim.call_in(air_tc, self.ues[grant.ue_id].receive_grant,
                         grant)

    # ------------------------------------------------------------------
    # delivery sinks
    # ------------------------------------------------------------------
    def _dl_at_ue_app(self, packet: Packet) -> None:
        if packet.kind is PacketKind.PING_REPLY:
            # close the ping round trip
            request = self._pending_pings.pop(packet.related_id, None)
            if request is not None:
                self.ping_results.append(PingResult(request, packet))
        self.dl_probe.record(packet)

    def _ul_at_gnb_top(self, packet: Packet) -> None:
        self.upf.forward_uplink(packet, self._ul_at_destination)

    def _ul_at_destination(self, packet: Packet) -> None:
        packet.mark_delivered(self.sim.now)
        self.ul_probe.record(packet)
        if packet.kind is PacketKind.PING_REQUEST:
            self._pending_pings[packet.packet_id] = packet
            self.server.respond(packet, self._send_ping_reply)

    def _send_ping_reply(self, reply: Packet) -> None:
        self.upf.forward_downlink(reply, self.gnb.send_downlink)

    # ------------------------------------------------------------------
    # experiments
    # ------------------------------------------------------------------
    def _dl_arrival(self, packet: Packet) -> None:
        """DL arrival dispatch (bound method, shared across packets —
        no per-packet closure allocation on the hot queueing path)."""
        self.upf.forward_downlink(packet, self.gnb.send_downlink)

    def _ul_arrival(self, packet: Packet) -> None:
        """UL arrival dispatch (bound method, shared across packets)."""
        self.ues[packet.ue_id].send_uplink(packet)

    def queue_downlink(self, arrivals: list[int],
                       payload_bytes: int | None = None,
                       ue_id: int = 1) -> None:
        """Schedule DL data arrivals without running the simulation.

        Arrivals must not lie in the simulated past; queue all traffic
        (possibly for several UEs) before calling :meth:`run`.
        """
        if self.slotted is not None:
            raise RuntimeError(
                "slotted engine is uplink-only; use engine='scalar' "
                "for downlink traffic")
        payload = payload_bytes or self.config.payload_bytes
        for arrival in arrivals:
            packet = Packet(PacketKind.DATA, Direction.DL, payload,
                            created_tc=arrival, ue_id=ue_id,
                            packet_id=next(self._packet_ids))
            self.sim.schedule(arrival, self._dl_arrival, packet)

    def queue_uplink(self, arrivals: list[int],
                     payload_bytes: int | None = None,
                     ue_id: int = 1) -> None:
        """Schedule UL data arrivals without running the simulation."""
        payload = payload_bytes or self.config.payload_bytes
        if self.slotted is not None:
            self.slotted.queue_uplink(arrivals, payload, ue_id)
            return
        for arrival in arrivals:
            packet = Packet(PacketKind.DATA, Direction.UL, payload,
                            created_tc=arrival, ue_id=ue_id,
                            packet_id=next(self._packet_ids))
            self.sim.schedule(arrival, self._ul_arrival, packet)

    def queue_pings(self, arrivals: list[int],
                    payload_bytes: int | None = None,
                    ue_id: int = 1) -> None:
        """Schedule ping requests without running the simulation."""
        if self.slotted is not None:
            raise RuntimeError(
                "slotted engine carries uplink data only; use "
                "engine='scalar' for pings")
        payload = payload_bytes or self.config.payload_bytes
        for arrival in arrivals:
            packet = Packet(PacketKind.PING_REQUEST, Direction.UL,
                            payload, created_tc=arrival, ue_id=ue_id,
                            packet_id=next(self._packet_ids))
            self.sim.schedule(arrival, self._ul_arrival, packet)

    def run(self) -> None:
        """Drain the simulation until all queued traffic completes."""
        if self.slotted is not None:
            self.slotted.run()
            return
        self.sim.run_until_idle()

    def run_downlink(self, arrivals: list[int],
                     payload_bytes: int | None = None,
                     ue_id: int = 1) -> LatencyProbe:
        """One-way DL latency experiment (Fig 6, 'Downlink')."""
        self.queue_downlink(arrivals, payload_bytes, ue_id)
        self.run()
        return self.dl_probe

    def run_uplink(self, arrivals: list[int],
                   payload_bytes: int | None = None,
                   ue_id: int = 1) -> LatencyProbe:
        """One-way UL latency experiment (Fig 6, 'Uplink')."""
        self.queue_uplink(arrivals, payload_bytes, ue_id)
        self.run()
        return self.ul_probe

    def run_ping(self, arrivals: list[int],
                 payload_bytes: int | None = None,
                 ue_id: int = 1) -> list[PingResult]:
        """Full ping round trips (the §3 journey)."""
        self.queue_pings(arrivals, payload_bytes, ue_id)
        self.run()
        return self.ping_results
