"""gNB node: DL stack, UL reception stack, MAC scheduler, radio head.

Downlink packets from the UPF descend SDAP→PDCP→RLC into the per-UE RLC
queues, where they wait for the once-per-slot scheduler (Table 2's
``RLC-q``).  Uplink transport blocks climb PHY→MAC→RLC→PDCP→SDAP and
leave toward the UPF.  Scheduling requests pass a PHY decode delay
before reaching the MAC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mac.harq import HarqProcessPool
from repro.mac.opportunities import Window
from repro.mac.pdcch import PdcchModel
from repro.mac.scheduler import GnbMacScheduler, UlGrant
from repro.mac.scheme import DuplexingScheme
from repro.phy.ofdm import Carrier
from repro.phy.timebase import tc_from_us
from repro.radio.radio_head import RadioHead
from repro.sim.distributions import DelaySampler
from repro.sim.engine import Simulator
from repro.sim.resources import CpuResource
from repro.sim.trace import Tracer
from repro.stack.layers import LayerPipeline, ProcessingLayer
from repro.stack.packets import LatencySource, Packet
from repro import calibration

__all__ = ["GnbCounters", "Gnb"]

_DOWN_LAYERS = ("SDAP", "PDCP", "RLC")
_UP_LAYERS = ("PHY", "MAC", "RLC", "PDCP", "SDAP")


@dataclass
class GnbCounters:
    """gNB-side counters."""

    dl_packets_in: int = 0
    ul_packets_out: int = 0
    srs_decoded: int = 0


class Gnb:
    """One gNB running a fully software-based stack (as in §7)."""

    def __init__(self, sim: Simulator, tracer: Tracer,
                 scheme: DuplexingScheme, carrier: Carrier,
                 rng: np.random.Generator,
                 radio_head: RadioHead | None = None,
                 layer_delays: dict[str, DelaySampler] | None = None,
                 cpu: CpuResource | None = None,
                 mcs_index: int = 16,
                 margin_tc: int | None = None,
                 grant_air_time_tc: int = 0,
                 ue_grant_turnaround_tc: int = 0,
                 on_ul_delivered: Callable[[Packet], None] | None = None,
                 on_dl_transmission: Callable[
                     [Window, list[Packet]], None] | None = None,
                 on_ul_grant: Callable[[UlGrant], None] | None = None,
                 harq_pool: "HarqProcessPool | None" = None,
                 pdcch: "PdcchModel | None" = None,
                 aggregation_level: int = 8,
                 processing_dilation: Callable[[str], float] | None = None,
                 rlc_fault_gate: Callable[..., bool] | None = None):
        self.sim = sim
        self.tracer = tracer
        self.scheme = scheme
        self.carrier = carrier
        self.rng = rng
        self.radio_head = radio_head
        self.counters = GnbCounters()
        self.on_ul_delivered = on_ul_delivered or (lambda p: None)

        delays = layer_delays or calibration.gnb_layer_delays()
        self._delays = delays
        self.cpu = cpu
        self.down_pipeline = LayerPipeline([
            ProcessingLayer(sim, tracer, name, f"gnb.{name.lower()}",
                            delays[name], rng,
                            adds_header=name in ("SDAP", "PDCP", "RLC"),
                            cpu=cpu, dilation=processing_dilation)
            for name in _DOWN_LAYERS
        ])
        self.up_pipeline = LayerPipeline([
            ProcessingLayer(sim, tracer, name, f"gnb.up.{name.lower()}",
                            delays[name], rng, cpu=cpu,
                            dilation=processing_dilation)
            for name in _UP_LAYERS
        ])

        radio_submission = None
        if radio_head is not None:
            radio_submission = radio_head.tx_latency_us
        if margin_tc is None:
            margin_tc = self._default_margin_tc()
        self.margin_tc = margin_tc
        self.scheduler = GnbMacScheduler(
            sim, tracer, scheme, carrier, rng,
            mcs_index=mcs_index,
            margin_tc=margin_tc,
            phy_prep_delay=delays["PHY"],
            radio_submission_us=radio_submission,
            grant_air_time_tc=grant_air_time_tc,
            ue_grant_turnaround_tc=ue_grant_turnaround_tc,
            on_dl_transmission=on_dl_transmission,
            on_ul_grant=on_ul_grant,
            harq_pool=harq_pool,
            pdcch=pdcch,
            dl_aggregation_level=aggregation_level,
            ul_aggregation_level=aggregation_level,
            rlc_fault_gate=rlc_fault_gate,
        )

    def _default_margin_tc(self) -> int:
        """Margin covering mean PHY preparation plus radio latency (§4:
        the scheduler must account for downstream processing time)."""
        phy_us = self._delays["PHY"].mean_us
        radio_us = 0.0
        if self.radio_head is not None:
            radio_us = self.radio_head.mean_one_way_us(
                self.carrier.samples_per_slot())
        # Headroom factor 2 on the stochastic parts keeps deadline
        # misses rare without inflating latency by a full extra slot.
        return tc_from_us(2.0 * (phy_us + radio_us))

    # ------------------------------------------------------------------
    # control-plane hooks
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.scheduler.start()

    def register_ue(self, ue_id: int, grant_free: bool = False,
                    cg_share: float = 1.0, priority: int = 0) -> None:
        self.scheduler.register_ue(ue_id, grant_free, cg_share,
                                   priority=priority)

    # ------------------------------------------------------------------
    # downlink entry (from the UPF)
    # ------------------------------------------------------------------
    def send_downlink(self, packet: Packet) -> None:
        """DL user data enters the gNB stack (Fig 3 ⑧)."""
        self.counters.dl_packets_in += 1
        packet.stamp("gnb.dl.in", self.sim.now)
        if self.tracer.enabled:  # lazy fields: skip kwargs when disabled
            self.tracer.emit(self.sim.now, "gnb.dl", "in",
                             packet_id=packet.packet_id)
        self.down_pipeline.process(packet, self._enqueue_dl)

    def _enqueue_dl(self, packet: Packet) -> None:
        self.scheduler.dl_queue(packet.ue_id).enqueue(packet)
        self.scheduler.notify_dl_data()

    # ------------------------------------------------------------------
    # uplink reception
    # ------------------------------------------------------------------
    def receive_ul_block(self, ue_id: int, window: Window,
                         packets: list[Packet]) -> None:
        """A UL transport block's last symbol has been captured."""
        rx_radio_tc = 0
        if self.radio_head is not None:
            rx_radio_tc = tc_from_us(self.radio_head.rx_latency_us(
                self.carrier.samples_per_slot(), self.rng))
        for packet in packets:
            packet.charge(LatencySource.RADIO, rx_radio_tc)
            packet.stamp("gnb.ul.block_rx", self.sim.now)

        def after_radio(block: list[Packet]) -> None:
            for packet in block:
                self.up_pipeline.process(packet, self._ul_done)

        self.sim.call_in(rx_radio_tc, after_radio, packets)

    def _ul_done(self, packet: Packet) -> None:
        self.counters.ul_packets_out += 1
        packet.stamp("gnb.ul.out", self.sim.now)
        self.on_ul_delivered(packet)

    # ------------------------------------------------------------------
    # scheduling requests
    # ------------------------------------------------------------------
    def receive_sr(self, ue_id: int, bsr_bytes: int = 0) -> None:
        """SR samples captured; decode then notify the MAC (Fig 3 ③)."""
        self.counters.srs_decoded += 1
        decode_tc = tc_from_us(self._delays["PHY"].sample(self.rng))
        self.sim.call_in(decode_tc, self.scheduler.receive_sr, ue_id,
                         bsr_bytes)
