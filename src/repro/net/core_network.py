"""Mobile core: the User Plane Function and a ping responder.

The gNB encapsulates uplink user data into GTP-U and forwards it to the
UPF, which decapsulates and routes it onward (Fig 2); the reverse
happens for downlink.  The core is not the paper's focus (§9 leaves
URLLC-aware core design open), so it is modelled as a processing delay
plus header accounting — enough for the end-to-end journey to include
the hop without bottlenecking on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.sim.distributions import DelaySampler, from_mean_std
from repro.sim.engine import Simulator
from repro.sim.sampling import BufferedSampler

__all__ = ["DEFAULT_UPF_DELAY_US", "Upf", "PingServer"]

if TYPE_CHECKING:
    from repro.sim.resources import CpuResource
from repro.sim.trace import Tracer
from repro.stack.packets import LatencySource, Packet, PacketKind
from repro.mac.types import Direction
from repro.phy.timebase import tc_from_us

#: Default UPF processing time (µs): GTP-U encap/decap plus forwarding
#: on a software UPF.
DEFAULT_UPF_DELAY_US: tuple[float, float] = (12.0, 4.0)


class Upf:
    """User Plane Function: GTP-U tunnel endpoint.

    With a :class:`~repro.sim.resources.CpuResource`, forwarding work
    queues behind the core's other traffic — the §9 question of whether
    URLLC needs "a dedicated [core] for URLLC packets and another for
    other services like eMBB" reduces to whether that contention is
    tolerable.
    """

    def __init__(self, sim: Simulator, tracer: Tracer,
                 rng: np.random.Generator,
                 delay: DelaySampler | None = None,
                 cpu: "CpuResource | None" = None,
                 outage: Callable[[], int] | None = None):
        self.sim = sim
        self.tracer = tracer
        self.rng = rng
        # Fault-injection hook (repro.faults): extra hold in Tc for a
        # packet entering the UPF during a core outage window.
        self.outage = outage
        # The UPF is the sole consumer of its registry stream ("upf" in
        # RanSystem), so its per-packet draws may be served from
        # pre-drawn blocks without changing the bit-stream (see
        # docs/PERFORMANCE.md for the ownership rule).
        self.delay: DelaySampler = BufferedSampler(
            delay or from_mean_std(*DEFAULT_UPF_DELAY_US), rng)
        self.cpu = cpu

    def forward_uplink(self, packet: Packet,
                       deliver: Callable[[Packet], None]) -> None:
        """Decapsulate an uplink GTP-U packet and hand it onward."""
        self._process(packet, "ul_forward", deliver)

    def forward_downlink(self, packet: Packet,
                         deliver: Callable[[Packet], None]) -> None:
        """Encapsulate a downlink packet toward the gNB."""
        packet.add_header("GTP-U")
        self._process(packet, "dl_forward", deliver)

    def _process(self, packet: Packet, event: str,
                 deliver: Callable[[Packet], None]) -> None:
        delay_tc = tc_from_us(self.delay.sample(self.rng))
        if self.outage is not None:
            delay_tc += self.outage()
        submitted = self.sim.now
        packet.stamp(f"upf.{event}", submitted)
        if self.tracer.enabled:  # lazy fields: skip kwargs when disabled
            self.tracer.emit(submitted, "upf", event,
                             packet_id=packet.packet_id)

        def done() -> None:
            packet.charge(LatencySource.PROCESSING,
                          self.sim.now - submitted)
            deliver(packet)

        if self.cpu is not None:
            self.cpu.execute(delay_tc, done)
        else:
            self.sim.call_in(delay_tc, done)


class PingServer:
    """Destination host that reflects ping requests (Fig 2's far end).

    ``packet_ids`` is the owning system's packet-id sequence; replies
    draw from it so ids stay deterministic per simulation rather than
    per process.
    """

    def __init__(self, sim: Simulator, tracer: Tracer,
                 turnaround_us: float = 20.0,
                 packet_ids: Iterator[int] | None = None):
        if turnaround_us < 0:
            raise ValueError("turnaround must be >= 0")
        self.sim = sim
        self.tracer = tracer
        self.turnaround_tc = tc_from_us(turnaround_us)
        self._packet_ids = packet_ids

    def respond(self, request: Packet,
                send_reply: Callable[[Packet], None]) -> None:
        """Generate the ping reply for a received request."""
        if request.kind is not PacketKind.PING_REQUEST:
            raise ValueError(f"cannot respond to {request.kind}")
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "server", "request_received",
                             packet_id=request.packet_id)

        def reply() -> None:
            extra = ({} if self._packet_ids is None
                     else {"packet_id": next(self._packet_ids)})
            response = Packet(
                kind=PacketKind.PING_REPLY,
                direction=Direction.DL,
                payload_bytes=request.payload_bytes,
                created_tc=self.sim.now,
                ue_id=request.ue_id,
                related_id=request.packet_id,
                **extra,
            )
            response.stamp("server.reply_created", self.sim.now)
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "server", "reply_sent",
                                 packet_id=response.packet_id,
                                 request_id=request.packet_id)
            send_reply(response)

        self.sim.call_in(self.turnaround_tc, reply)
