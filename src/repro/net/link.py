"""Air link between gNB and UE: channel fate + propagation.

Each transport block crosses the channel once; the channel model
decides whether it decodes (HARQ retransmission otherwise) and the
propagation delay is charged to the radio budget (it is sub-µs at URLLC
cell sizes but the decomposition stays complete).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.phy.channel import Channel, PerfectChannel, propagation_delay_tc
from repro.sim.engine import Simulator
from repro.sim.sampling import UniformBuffer
from repro.sim.trace import Tracer
from repro.stack.packets import LatencySource, Packet

__all__ = ["LinkCounters", "AirLink"]


@dataclass
class LinkCounters:
    """Channel-level counters."""

    blocks_sent: int = 0
    blocks_failed: int = 0
    packets_dropped: int = 0

    def block_error_rate(self) -> float:
        if self.blocks_sent == 0:
            return 0.0
        return self.blocks_failed / self.blocks_sent


class AirLink:
    """One UE↔gNB radio link."""

    def __init__(self, sim: Simulator, tracer: Tracer,
                 rng: np.random.Generator,
                 channel: Channel | None = None,
                 distance_m: float = 100.0,
                 max_harq_retransmissions: int = 4,
                 fault_gate: Callable[[int], str | None] | None = None):
        self.sim = sim
        self.tracer = tracer
        self.rng = rng
        self.channel = channel or PerfectChannel()
        self.propagation_tc = propagation_delay_tc(distance_m)
        self.max_harq = max_harq_retransmissions
        self.counters = LinkCounters()
        # Fault-injection hook (repro.faults): consulted per block and
        # may force a "nack" or "dtx" fate before the channel draws.
        self.fault_gate = fault_gate
        #: Fate the gate forced for the most recent transmit() call —
        #: "nack", "dtx", or None.  The session's NACK handlers read it
        #: synchronously to pick the matching feedback timing.
        self.last_fault_fate: str | None = None
        # Channels that consume exactly one uniform per block
        # (delivered_from_uniform) get their draws from a pre-filled
        # block; the link owns its registry stream, so the buffered and
        # scalar paths consume the identical bit-stream (see
        # docs/PERFORMANCE.md).  Stateful channels keep the scalar path.
        self._uniforms: UniformBuffer | None = None
        if hasattr(self.channel, "delivered_from_uniform"):
            self._uniforms = UniformBuffer(rng)

    def decide_fate(self, completion_tc: int) -> bool:
        """Channel fate of one transport block finishing at
        ``completion_tc``: counts the block, consults the fault gate,
        then (fault-free only) draws the channel.

        Shared by :meth:`transmit` and the slotted engine's mirrored
        uplink path (:mod:`repro.sim.slotted`), so both consume the
        link stream identically.  ``last_fault_fate`` is left set for
        the caller's feedback-timing decision.
        """
        self.counters.blocks_sent += 1
        # A forced fault fate replaces the channel draw entirely (the
        # block is lost regardless of channel state, so consuming a
        # channel uniform for it would be wasted entropy).
        self.last_fault_fate = (None if self.fault_gate is None
                                else self.fault_gate(completion_tc))
        if self.last_fault_fate is not None:
            return False
        if self._uniforms is not None:
            return self.channel.delivered_from_uniform(
                self._uniforms.next())
        return self.channel.delivered(completion_tc, self.rng)

    def transmit(self, packets: list[Packet], completion_tc: int,
                 deliver: Callable[[list[Packet]], None],
                 retransmit: Callable[[list[Packet]], None]) -> None:
        """Decide the fate of one transport block finishing at
        ``completion_tc`` (== now, when called at window end).

        On success ``deliver`` runs after the propagation delay; on
        failure packets go back through ``retransmit`` unless they have
        exhausted their HARQ budget, in which case they are dropped.
        """
        delivered = self.decide_fate(completion_tc)
        if delivered:
            for packet in packets:
                packet.charge(LatencySource.RADIO, self.propagation_tc)
            self.sim.schedule(completion_tc + self.propagation_tc,
                              deliver, packets)
            return
        self.counters.blocks_failed += 1
        if self.tracer.enabled:  # lazy fields: skip kwargs when disabled
            self.tracer.emit(completion_tc, "link", "block_failed",
                             packets=len(packets))
        survivors: list[Packet] = []
        for packet in packets:
            if packet.harq_retransmissions >= self.max_harq:
                packet.mark_dropped("harq-exhausted")
                self.counters.packets_dropped += 1
            else:
                packet.harq_retransmissions += 1
                survivors.append(packet)
        if survivors:
            retransmit(survivors)
