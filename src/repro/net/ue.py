"""User-equipment node.

The UE owns the uplink access behaviour the paper analyses:

- **grant-based**: data waits in the UE's RLC queue while a scheduling
  request travels to the gNB and a grant comes back (Fig 3 ①-⑥) — the
  "SR and grant procedure [that] noticeably increases the latency of UL
  transmissions" (§4);
- **grant-free**: the UE transmits on its pre-allocated configured-grant
  resources in any UL window with enough room, skipping the handshake
  at the cost of reserved capacity (§5).

Downlink packets arrive as decoded transport blocks and climb the
PHY→...→APP pipeline.  All processing times are sampled from the
calibrated UE distributions (slower than the gNB's, §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mac import bsr
from repro.mac.opportunities import OpportunityTimeline, Window
from repro.mac.scheduler import UlGrant
from repro.mac.scheme import DuplexingScheme
from repro.mac.types import AccessMode
from repro.phy.ofdm import Carrier
from repro.phy.timebase import tc_from_us
from repro.sim.distributions import DelaySampler
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.layers import LayerPipeline, ProcessingLayer
from repro.stack.packets import LatencySource, Packet
from repro.stack.rlc import RlcQueue
from repro import calibration

__all__ = ["UeCounters", "Ue"]

#: Order of layers on the way down (UL) and up (DL).
_DOWN_LAYERS = ("APP", "SDAP", "PDCP", "RLC", "MAC")
_UP_LAYERS = ("PHY", "MAC", "RLC", "PDCP", "SDAP")


@dataclass
class UeCounters:
    """UE-side operational counters."""

    srs_sent: int = 0
    grants_received: int = 0
    wasted_grants: int = 0
    grant_deadline_misses: int = 0
    ul_blocks_sent: int = 0
    packets_delivered: int = 0


@dataclass
class _PlannedWindow:
    window: Window
    packets: list[Packet] = field(default_factory=list)
    bytes_used: int = 0


class Ue:
    """One UE attached to the gNB over a duplexing scheme."""

    def __init__(self, sim: Simulator, tracer: Tracer, ue_id: int,
                 scheme: DuplexingScheme, carrier: Carrier,
                 rng: np.random.Generator,
                 access: AccessMode = AccessMode.GRANT_FREE,
                 tx_layer_delays: dict[str, DelaySampler] | None = None,
                 rx_layer_delays: dict[str, DelaySampler] | None = None,
                 radio_submission_us: Callable[
                     [int, np.random.Generator], float] | None = None,
                 min_tx_symbols: int = 2,
                 sr_symbols: int = 1,
                 sr_period_tc: int = 0,
                 sr_offset_tc: int = 0,
                 cg_capacity_bytes: Callable[[Window], int] | None = None,
                 on_ul_block: Callable[[int, Window, list[Packet]],
                                       None] | None = None,
                 on_sr: Callable[[int, int], None] | None = None,
                 on_delivered: Callable[[Packet], None] | None = None,
                 rlc_fault_gate: Callable[..., bool] | None = None):
        self.sim = sim
        self.tracer = tracer
        self.ue_id = ue_id
        self.scheme = scheme
        self.carrier = carrier
        self.rng = rng
        self.access = access
        self.counters = UeCounters()

        tx_delays = tx_layer_delays or calibration.ue_tx_layer_delays()
        rx_delays = rx_layer_delays or calibration.ue_rx_layer_delays()
        category = f"ue{ue_id}"
        self.down_pipeline = LayerPipeline([
            ProcessingLayer(sim, tracer, name, f"{category}.{name.lower()}",
                            tx_delays[name], rng,
                            adds_header=name in ("SDAP", "PDCP", "RLC",
                                                 "MAC"))
            for name in _DOWN_LAYERS
        ])
        self.up_pipeline = LayerPipeline([
            ProcessingLayer(sim, tracer, name,
                            f"{category}.up.{name.lower()}",
                            rx_delays[name], rng)
            for name in _UP_LAYERS
        ])
        self.phy_prep = tx_delays["PHY"]
        self.radio_submission_us = radio_submission_us
        self._ul = scheme.ul_timeline()
        symbol_tc = carrier.numerology.slot_duration_tc // 14
        self.min_tx_tc = max(1, min_tx_symbols * symbol_tc)
        self.sr_tc = max(1, sr_symbols * symbol_tc)
        if sr_period_tc < 0 or sr_offset_tc < 0:
            raise ValueError("SR period and offset must be >= 0")
        if sr_period_tc and sr_offset_tc >= sr_period_tc:
            raise ValueError("sr_offset_tc must be below sr_period_tc")
        self.sr_period_tc = sr_period_tc
        self.sr_offset_tc = sr_offset_tc
        self.cg_capacity_bytes = cg_capacity_bytes or (
            lambda window: 10**9)
        self.on_ul_block = on_ul_block or (lambda ue, w, p: None)
        self.on_sr = on_sr or (lambda ue, bsr: None)
        self.on_delivered = on_delivered or (lambda p: None)

        self.ul_queue = RlcQueue(sim, tracer, f"{category}.rlcq",
                                 fault_gate=rlc_fault_gate)
        self._sr_outstanding = False
        self._planned: dict[int, _PlannedWindow] = {}

    # ------------------------------------------------------------------
    # uplink entry point
    # ------------------------------------------------------------------
    def send_uplink(self, packet: Packet) -> None:
        """APP hands a packet to the stack (Fig 3 ①)."""
        packet.stamp("ue.app.send", self.sim.now)
        if self.tracer.enabled:  # lazy fields: skip kwargs when disabled
            self.tracer.emit(self.sim.now, f"ue{self.ue_id}.app", "send",
                             packet_id=packet.packet_id)
        self.down_pipeline.process(packet, self._ul_data_ready)

    def _ul_data_ready(self, packet: Packet) -> None:
        """Packet reached the MAC; access-mode specific handling."""
        if self.access is AccessMode.GRANT_FREE:
            self._plan_grant_free(packet)
        else:
            self.ul_queue.enqueue(packet)
            self._maybe_send_sr()

    # ------------------------------------------------------------------
    # grant-free path
    # ------------------------------------------------------------------
    def _plan_grant_free(self, packet: Packet,
                         is_retransmission: bool = False) -> None:
        """Place the packet in the earliest usable configured-grant
        window (the joining rule of the analytical model)."""
        now = self.sim.now
        prep_tc = tc_from_us(self.phy_prep.sample(self.rng))
        radio_tc = self._radio_tc()
        ready = now + prep_tc + radio_tc
        for window in self._ul.windows_from(ready):
            entry = max(ready, window.start)
            if window.end - entry < self.min_tx_tc:
                continue
            plan = self._planned.get(window.start)
            capacity = self.cg_capacity_bytes(window)
            used = plan.bytes_used if plan else 0
            if used + packet.wire_bytes > capacity:
                continue
            if plan is None:
                plan = _PlannedWindow(window)
                self._planned[window.start] = plan
                self.sim.schedule(window.end, self._transmit_planned,
                                  window.start)
            plan.packets.append(packet)
            plan.bytes_used += packet.wire_bytes
            packet.charge(LatencySource.PROCESSING, prep_tc)
            packet.charge(LatencySource.RADIO, radio_tc)
            packet.charge(LatencySource.PROTOCOL,
                          window.end - now - prep_tc - radio_tc)
            packet.stamp("ue.mac.cg_planned", now)
            if self.tracer.enabled:
                self.tracer.emit(now, f"ue{self.ue_id}.mac", "cg_planned",
                                 packet_id=packet.packet_id,
                                 window_start=window.start,
                                 retransmission=is_retransmission)
            return
        raise LookupError("no usable configured-grant window found")

    def _transmit_planned(self, window_start: int) -> None:
        plan = self._planned.pop(window_start)
        self.counters.ul_blocks_sent += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, f"ue{self.ue_id}.mac", "cg_tx",
                             window_start=window_start,
                             packets=len(plan.packets))
        self.on_ul_block(self.ue_id, plan.window, plan.packets)

    # ------------------------------------------------------------------
    # grant-based path
    # ------------------------------------------------------------------
    def _next_sr_occasion(self, time: int) -> int:
        """Earliest usable SR occasion (PUCCH) at or after ``time``.

        Without a configured period any instant in a UL window works
        (the paper's footnote 2 idealisation); with one, occasions tick
        on the ``sr_offset + k·sr_period`` grid inside UL windows.
        """
        if not self.sr_period_tc:
            return self._ul.earliest_entry_joining(time, self.sr_tc)
        period, offset = self.sr_period_tc, self.sr_offset_tc
        candidate = time
        for _ in range(10_000):
            remainder = (candidate - offset) % period
            if remainder:
                candidate += period - remainder
            window = self._ul.window_at(candidate)
            if window is not None and window.end - candidate >= self.sr_tc:
                return candidate
            window = self._ul.first_start_at_or_after(candidate + 1)
            candidate = window.start
        raise LookupError("no SR occasion found; sr_period_tc too "
                          "coarse for this UL timeline")

    def _maybe_send_sr(self) -> None:
        if self._sr_outstanding or not self.ul_queue:
            return
        self._sr_outstanding = True
        sr_entry = self._next_sr_occasion(self.sim.now)
        sr_complete = sr_entry + self.sr_tc
        self.counters.srs_sent += 1
        # The request carries the buffer status (quantised through the
        # TS 38.321 BSR table) so the scheduler can size the grant.
        report = bsr.quantize(self.ul_queue.queued_bytes)
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, f"ue{self.ue_id}.mac", "sr_tx",
                             entry=sr_entry, bsr_bytes=report)
        self.sim.schedule(sr_complete, self.on_sr, self.ue_id, report)

    def receive_grant(self, grant: UlGrant) -> None:
        """Grant decoded from DL control (Fig 3 ⑥)."""
        self._sr_outstanding = False
        self.counters.grants_received += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, f"ue{self.ue_id}.mac",
                             "grant_rx", window_start=grant.window.start)
        packets = self.ul_queue.pull_up_to(grant.capacity_bytes)
        if not packets:
            self.counters.wasted_grants += 1
            return
        now = self.sim.now
        prep_tc = tc_from_us(self.phy_prep.sample(self.rng))
        radio_tc = self._radio_tc()
        ready = now + prep_tc + radio_tc
        if ready > grant.window.start:
            # Too slow to make the granted window: the allocation is
            # lost and the UE must request again (§4 interdependency).
            self.counters.grant_deadline_misses += 1
            if self.tracer.enabled:
                self.tracer.emit(now, f"ue{self.ue_id}.mac",
                                 "grant_deadline_miss",
                                 late_by=ready - grant.window.start)
            for packet in packets:
                self.ul_queue.enqueue(packet)
            self._maybe_send_sr()
            return
        for packet in packets:
            packet.charge(LatencySource.PROCESSING, prep_tc)
            packet.charge(LatencySource.RADIO, radio_tc)
            packet.charge(LatencySource.PROTOCOL,
                          grant.window.end - now - prep_tc - radio_tc)
            packet.stamp("ue.mac.granted_tx", now)
        self.counters.ul_blocks_sent += 1
        self.sim.schedule(grant.window.end, self.on_ul_block,
                          self.ue_id, grant.window, packets)
        if self.ul_queue:
            self._maybe_send_sr()

    # ------------------------------------------------------------------
    # HARQ retransmission entry
    # ------------------------------------------------------------------
    def retransmit_uplink(self, packets: list[Packet]) -> None:
        """Channel-failed UL packets re-enter the access procedure."""
        for packet in packets:
            if self.access is AccessMode.GRANT_FREE:
                self._plan_grant_free(packet, is_retransmission=True)
            else:
                self.ul_queue.enqueue(packet)
        if self.access is AccessMode.GRANT_BASED:
            self._maybe_send_sr()

    # ------------------------------------------------------------------
    # downlink
    # ------------------------------------------------------------------
    def receive_dl_block(self, packets: list[Packet]) -> None:
        """A decoded DL transport block reaches the UE PHY (Fig 3 ⑪)."""
        rx_radio_tc = self._radio_tc()
        for packet in packets:
            packet.charge(LatencySource.RADIO, rx_radio_tc)
            packet.stamp("ue.phy.block_rx", self.sim.now)

        def after_radio(block: list[Packet]) -> None:
            for packet in block:
                self.up_pipeline.process(packet, self._dl_delivered)

        self.sim.call_in(rx_radio_tc, after_radio, packets)

    def _dl_delivered(self, packet: Packet) -> None:
        packet.mark_delivered(self.sim.now)
        packet.stamp("ue.app.delivered", self.sim.now)
        self.counters.packets_delivered += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, f"ue{self.ue_id}.app",
                             "delivered", packet_id=packet.packet_id)
        self.on_delivered(packet)

    # ------------------------------------------------------------------
    def _radio_tc(self) -> int:
        if self.radio_submission_us is None:
            return 0
        n_samples = self.carrier.samples_per_slot()
        return tc_from_us(self.radio_submission_us(n_samples, self.rng))
