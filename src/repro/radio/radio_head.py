"""Radio-head (RH) model.

The RH converts samples to RF and back (Fig 2).  Its one-way latency —
the paper's *radio latency* category — is the sum of

- RF-chain time (DAC/ADC pipelines, analog filters),
- the interface-bus transfer (:mod:`repro.radio.interface`),
- OS scheduling jitter on the submission thread
  (:mod:`repro.radio.os_jitter`).

The testbed's USB B210 totals ≈500 µs one way, which is why its
transmissions "must always be delayed for one slot to give enough time
to the RH for preparation" (§7).  :meth:`RadioHead.required_margin_tc`
computes exactly that scheduling margin, closing the interdependency
loop of §4 (the MAC must schedule ahead by processing + radio time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.ofdm import Carrier
from repro.phy.timebase import tc_from_us
from repro.radio.interface import InterfaceBus
from repro.radio.os_jitter import OsJitterModel

__all__ = ["RadioHead"]


@dataclass(frozen=True)
class RadioHead:
    """One SDR radio head attached over an interface bus."""

    name: str
    bus: InterfaceBus
    jitter: OsJitterModel
    rf_chain_us: float = 40.0  #: DAC/ADC + analog path, one way

    def __post_init__(self) -> None:
        if self.rf_chain_us < 0:
            raise ValueError("rf_chain_us must be >= 0")

    # ------------------------------------------------------------------
    # sampled latencies
    # ------------------------------------------------------------------
    def tx_latency_us(self, n_samples: int,
                      rng: np.random.Generator) -> float:
        """Submit ``n_samples`` for transmission: bus + jitter + RF."""
        return (self.bus.submission_latency_us(n_samples, rng)
                + self.jitter.sample_us(rng)
                + self.rf_chain_us)

    def rx_latency_us(self, n_samples: int,
                      rng: np.random.Generator) -> float:
        """Receive ``n_samples`` from the radio into the PHY."""
        # Reception streams continuously; the dominated terms are the
        # same bus transfer and the wakeup jitter of the reader thread.
        return (self.bus.submission_latency_us(n_samples, rng)
                + self.jitter.sample_us(rng)
                + self.rf_chain_us)

    # ------------------------------------------------------------------
    # planning quantities (what the MAC margin must cover)
    # ------------------------------------------------------------------
    def mean_one_way_us(self, n_samples: int) -> float:
        """Expected one-way radio latency for a transfer size."""
        return (self.bus.mean_latency_us(n_samples)
                + self.jitter.mean_us()
                + self.rf_chain_us)

    def required_margin_tc(self, carrier: Carrier,
                           quantile_headroom: float = 2.0) -> int:
        """Scheduling margin the MAC must leave before a window so that
        samples reach the radio in time (§4: "the scheduler [must]
        include a margin to ensure the radio is ready on time").

        ``quantile_headroom`` multiplies the stochastic part (spikes and
        jitter) to buy reliability at the cost of latency — the §6
        trade-off, swept by the reliability ablation.
        """
        if quantile_headroom < 0:
            raise ValueError("headroom must be >= 0")
        n_samples = carrier.samples_per_slot()
        deterministic = (self.bus.deterministic_latency_us(n_samples)
                         + self.rf_chain_us)
        stochastic = (self.bus.spike_probability * self.bus.spike_mean_us
                      + self.jitter.mean_us())
        return tc_from_us(deterministic + quantile_headroom * stochastic)

    def describe(self) -> str:
        return (f"{self.name}: bus={self.bus.name}, "
                f"jitter={self.jitter.name}, "
                f"RF chain {self.rf_chain_us:g} µs")
