"""Host ↔ radio-head interface buses (Fig 5's subject).

Submitting I/Q samples to an SDR over USB/PCIe/Ethernet costs a setup
latency plus a per-sample transfer cost, and — on a general-purpose OS —
occasional heavy spikes when the submission thread is descheduled.  The
paper's Fig 5 plots exactly this for USB 2.0 and USB 3.0 between 2 000
and 20 000 samples; parameters here are fitted to those series (see
:mod:`repro.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration import INTERFACE_PARAMS
from repro.sim.distributions import Exponential

__all__ = ["InterfaceBus", "bus", "usb2", "usb3", "pcie", "ethernet"]


@dataclass(frozen=True)
class InterfaceBus:
    """One bus model: latency = setup + per_sample·n (+ rare spike)."""

    name: str
    setup_us: float
    per_sample_us: float
    spike_probability: float
    spike_mean_us: float

    def __post_init__(self) -> None:
        if self.setup_us < 0 or self.per_sample_us < 0:
            raise ValueError("latency parameters must be >= 0")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike probability must be in [0, 1]")

    # ------------------------------------------------------------------
    def deterministic_latency_us(self, n_samples: int) -> float:
        """The spike-free (expected floor) submission latency."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        return self.setup_us + self.per_sample_us * n_samples

    def submission_latency_us(self, n_samples: int,
                              rng: np.random.Generator) -> float:
        """One sampled submission latency, spikes included (Fig 5)."""
        latency = self.deterministic_latency_us(n_samples)
        if self.spike_probability and rng.random() < self.spike_probability:
            latency += Exponential(self.spike_mean_us).sample(rng)
        return latency

    def mean_latency_us(self, n_samples: int) -> float:
        """Expected submission latency including the spike term."""
        return (self.deterministic_latency_us(n_samples)
                + self.spike_probability * self.spike_mean_us)

    def sweep(self, sample_counts: list[int], rng: np.random.Generator,
              repetitions: int = 1) -> dict[int, list[float]]:
        """Latency samples per submission size — Fig 5's data series."""
        return {
            n: [self.submission_latency_us(n, rng)
                for _ in range(repetitions)]
            for n in sample_counts
        }


def bus(name: str) -> InterfaceBus:
    """Calibrated bus by name: usb2, usb3, pcie or ethernet."""
    try:
        setup, per_sample, probability, spike_mean = INTERFACE_PARAMS[name]
    except KeyError:
        known = ", ".join(sorted(INTERFACE_PARAMS))
        raise KeyError(f"unknown bus {name!r}; known: {known}") from None
    return InterfaceBus(name, setup, per_sample, probability, spike_mean)


def usb2() -> InterfaceBus:
    """USB 2.0, the B210's fallback interface (Fig 5, upper series)."""
    return bus("usb2")


def usb3() -> InterfaceBus:
    """USB 3.0, the testbed's interface (Fig 5, lower series)."""
    return bus("usb3")


def pcie() -> InterfaceBus:
    """PCIe-attached radio — the low-latency design choice of §5."""
    return bus("pcie")


def ethernet() -> InterfaceBus:
    """Ethernet fronthaul (e.g. 10 GbE O-RAN split 7.2)."""
    return bus("ethernet")
