"""Radio substrate: interface buses, OS jitter, the radio-head model."""

from repro.radio.interface import (
    InterfaceBus,
    bus,
    ethernet,
    pcie,
    usb2,
    usb3,
)
from repro.radio.os_jitter import OsJitterModel, gpos, none, rt_kernel
from repro.radio.radio_head import RadioHead

__all__ = [
    "InterfaceBus",
    "bus",
    "ethernet",
    "pcie",
    "usb2",
    "usb3",
    "OsJitterModel",
    "gpos",
    "none",
    "rt_kernel",
    "RadioHead",
]
