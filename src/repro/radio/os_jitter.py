"""Operating-system scheduling jitter (paper §6).

Software 5G stacks run on general-purpose operating systems whose
schedulers give no hard real-time guarantee; the resulting
non-deterministic delays are a *reliability* problem, because a late
sample submission misses the radio deadline and loses the transmission
even though the average latency looked fine.

Two calibrated regimes are provided:

- :func:`gpos` — a stock kernel: small Gaussian base noise plus frequent
  heavy spikes (the spikes visible in Fig 5);
- :func:`rt_kernel` — a PREEMPT_RT-style kernel: tightly bounded noise,
  spikes rare and small (the §6 mitigation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration import OS_JITTER_GPOS, OS_JITTER_RT_KERNEL
from repro.sim.distributions import Exponential, TruncatedNormal

__all__ = ["OsJitterModel", "gpos", "rt_kernel", "none"]


@dataclass(frozen=True)
class OsJitterModel:
    """Additive scheduling noise: |N(0, base_std)| + rare spike."""

    name: str
    base_std_us: float
    spike_probability: float
    spike_mean_us: float

    def __post_init__(self) -> None:
        if self.base_std_us < 0 or self.spike_mean_us < 0:
            raise ValueError("jitter magnitudes must be >= 0")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike probability must be in [0, 1]")

    def sample_us(self, rng: np.random.Generator) -> float:
        """One draw of extra OS-imposed delay (µs, >= 0)."""
        noise = TruncatedNormal(0.0, self.base_std_us).sample(rng)
        if self.spike_probability and rng.random() < self.spike_probability:
            noise += Exponential(self.spike_mean_us).sample(rng)
        return noise

    def mean_us(self) -> float:
        """Expected extra delay."""
        # E[max(0, N(0, σ))] = σ / sqrt(2π)
        return (self.base_std_us / float(np.sqrt(2.0 * np.pi))
                + self.spike_probability * self.spike_mean_us)

    def tail_quantile_us(self, quantile: float,
                         rng: np.random.Generator,
                         draws: int = 200_000) -> float:
        """Monte-Carlo quantile — the margin a scheduler must budget to
        survive this jitter at a given reliability (§6)."""
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        samples = [self.sample_us(rng) for _ in range(draws)]
        return float(np.quantile(samples, quantile))


def gpos() -> OsJitterModel:
    """Stock general-purpose kernel."""
    params = OS_JITTER_GPOS
    return OsJitterModel("gpos", params["base_std_us"],
                         params["spike_probability"],
                         params["spike_mean_us"])


def rt_kernel() -> OsJitterModel:
    """Real-time (PREEMPT_RT-style) kernel."""
    params = OS_JITTER_RT_KERNEL
    return OsJitterModel("rt-kernel", params["base_std_us"],
                         params["spike_probability"],
                         params["spike_mean_us"])


def none() -> OsJitterModel:
    """No OS jitter (ASIC-like determinism baseline)."""
    return OsJitterModel("none", 0.0, 0.0, 0.0)
