"""Command-line interface: regenerate the paper's analyses from a shell.

Usage (after installation)::

    urllc5g table1                # the feasibility matrix
    urllc5g fig4                  # DM worst cases
    urllc5g journey               # the traced ping breakdown (Fig 3)
    urllc5g fig6 --packets 400    # testbed latency distributions
    urllc5g sweep                 # slot duration × radio latency
    urllc5g technologies          # Wi-Fi / Bluetooth / mmWave (§9)
    urllc5g lint src/             # per-file static analysis (docs/LINTING.md)
    urllc5g analyze src/          # whole-program analysis (docs/ANALYSIS.md)
    urllc5g distcheck src/        # distributability certification
    urllc5g check --all           # lint + analyze + detsan + distcheck gate
    urllc5g check --determinism   # same-seed trace-digest comparison
    urllc5g bench smoke           # run a named campaign (docs/CAMPAIGNS.md)
    urllc5g bench smoke --check benchmarks/baselines/smoke.json
    urllc5g chaosdispatch --campaign smoke   # crash-point certification

or ``python -m repro.cli <command>``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.report import render_table, render_worst_case_bars
from repro.analysis.stats import histogram
from repro.baselines.bluetooth import BluetoothPiconet
from repro.baselines.mmwave import MmWaveBaseline
from repro.baselines.wifi import WifiBaseline
from repro.core.budget import slot_duration_sweep
from repro.core.design_space import feasibility_matrix, render_table1
from repro.core.journey import reconstruct_ping_journey
from repro.core.latency_model import LatencyModel
from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

__all__ = ["build_parser", "main"]


def _cmd_table1(args: argparse.Namespace) -> None:
    print(render_table1(feasibility_matrix(mu=args.mu)))


def _cmd_fig4(args: argparse.Namespace) -> None:
    model = LatencyModel(minimal_dm(mu=args.mu))
    entries = {
        "Grant-free UL": model.extremes(
            Direction.UL, AccessMode.GRANT_FREE).worst_tc,
        "Grant-based UL": model.extremes(
            Direction.UL, AccessMode.GRANT_BASED).worst_tc,
        "DL": model.extremes(Direction.DL).worst_tc,
    }
    print(render_worst_case_bars(entries, tc_from_ms(0.5)))


def _testbed(access: AccessMode, seed: int, trace: bool = False
             ) -> RanSystem:
    radio_head = RadioHead("b210", usb3(), gpos())
    return RanSystem(testbed_dddu(),
                     RanConfig(access=access, gnb_radio_head=radio_head,
                               seed=seed, trace=trace))


def _cmd_journey(args: argparse.Namespace) -> None:
    access = (AccessMode.GRANT_FREE if args.grant_free
              else AccessMode.GRANT_BASED)
    system = _testbed(access, seed=args.seed, trace=True)
    results = system.run_ping([tc_from_ms(0.2)])
    print(reconstruct_ping_journey(results[0], system.tracer).render())


def _cmd_fig6(args: argparse.Namespace) -> None:
    arrivals = uniform_in_horizon(
        args.packets, tc_from_ms(args.packets * 5),
        RngRegistry(args.seed).stream("arrivals"))
    for access in (AccessMode.GRANT_BASED, AccessMode.GRANT_FREE):
        print(f"--- {access.value} ---")
        for direction in ("Downlink", "Uplink"):
            system = _testbed(access, seed=args.seed)
            probe = (system.run_downlink(arrivals)
                     if direction == "Downlink"
                     else system.run_uplink(arrivals))
            hist = histogram(probe.latencies_ms(), bin_width=0.5,
                             low=0.0, high=8.0)
            print(hist.render(width=40,
                              label=f"{direction}: {probe.summary()}"))
            print()


def _cmd_sweep(args: argparse.Namespace) -> None:
    radio_values = [float(v) for v in args.radio_us]
    sweep = slot_duration_sweep(minimal_dm, mus=[0, 1, 2],
                                direction=Direction.DL,
                                access=AccessMode.GRANT_FREE,
                                radio_us_values=radio_values)
    rows = [(f"{radio:g} µs radio",
             *(f"{sweep[radio][mu]:8.1f}" for mu in (0, 1, 2)))
            for radio in radio_values]
    print(render_table(
        ("", "µ=0 (1 ms)", "µ=1 (0.5 ms)", "µ=2 (0.25 ms)"), rows,
        title="Worst-case DL latency (µs), DM configuration"))


def _cmd_technologies(args: argparse.Namespace) -> None:
    # Both baselines intentionally share one comparison stream so the
    # table's Monte-Carlo noise is correlated across technologies.
    rng = RngRegistry(args.seed).stream("technologies")  # detsan: shared
    rows = [("5G FR2 mmWave",
             f"{MmWaveBaseline().sub_ms_fraction(rng, 30_000):.1%} sub-ms")]
    for stations in (2, 10):
        reliability = WifiBaseline(stations).deadline_reliability(
            500.0, rng, draws=10_000)
        rows.append((f"Wi-Fi DCF ({stations} stations)",
                     f"{reliability:.1%} within 0.5 ms"))
    for slaves in (1, 7):
        piconet = BluetoothPiconet(slaves)
        rows.append((f"Bluetooth ({slaves} slaves)",
                     f"worst {piconet.worst_case_uplink_us():g} µs"))
    print(render_table(("technology", "vs the 0.5 ms budget"), rows))


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily so analysis commands stay import-light.
    from pathlib import Path

    from repro.devtools.lintkit import (
        LintConfig, lint_paths, load_config, render_json, render_sarif,
        render_text)
    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        # A typo'd path must not produce a green "0 files checked".
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        if args.no_config:
            config = LintConfig()
        else:
            config = load_config(pyproject=args.config, start=paths[0])
        if args.select:
            config.select = tuple(args.select)
        if args.ignore:
            config.ignore = tuple(config.ignore) + tuple(args.ignore)
        report = lint_paths(paths, config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderers = {"json": render_json, "sarif": render_sarif,
                 "text": render_text}
    print(renderers[args.format](report))
    return report.exit_code


def _cmd_analyze(args: argparse.Namespace) -> int:
    # Imported lazily so analysis commands stay import-light.
    from pathlib import Path

    from repro.devtools.analyze import (
        AnalyzeConfig, Baseline, analyze_paths, load_analyze_config,
        load_baseline, render_analysis_json, render_analysis_sarif,
        render_analysis_text, write_baseline)
    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        if args.no_config:
            config = AnalyzeConfig()
        else:
            config = load_analyze_config(pyproject=args.config,
                                         start=paths[0])
        baseline = (load_baseline(args.baseline)
                    if args.baseline else None)
        if args.write_baseline:
            # Capture the *unfiltered* findings as the new baseline.
            report = analyze_paths(paths, config, baseline=Baseline(),
                                   cache_path=args.cache,
                                   use_cache=not args.no_cache)
            write_baseline(args.write_baseline, report.violations)
            print(f"wrote {len(report.violations)} finding(s) to "
                  f"{args.write_baseline}")
            return 0
        report = analyze_paths(paths, config, baseline=baseline,
                               cache_path=args.cache,
                               use_cache=not args.no_cache)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderers = {"json": render_analysis_json,
                 "sarif": render_analysis_sarif,
                 "text": render_analysis_text}
    print(renderers[args.format](report))
    return report.exit_code


def _cmd_detsan(args: argparse.Namespace) -> int:
    # Imported lazily so analysis commands stay import-light.
    from pathlib import Path

    from repro.devtools.analyze import (Baseline, load_baseline,
                                        write_baseline)
    from repro.devtools.detsan import (
        DetsanConfig, detsan_paths, load_detsan_config,
        render_detsan_dot, render_detsan_json, render_detsan_sarif,
        render_detsan_text)
    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        if args.no_config:
            config = DetsanConfig()
        else:
            config = load_detsan_config(pyproject=args.config,
                                        start=paths[0])
        baseline = (load_baseline(args.baseline)
                    if args.baseline else None)
        if args.write_baseline:
            # Capture the *unfiltered* findings as the new baseline.
            report = detsan_paths(paths, config, baseline=Baseline(),
                                  cache_path=args.cache,
                                  use_cache=not args.no_cache)
            write_baseline(args.write_baseline, report.violations)
            print(f"wrote {len(report.violations)} finding(s) to "
                  f"{args.write_baseline}")
            return 0
        report = detsan_paths(paths, config, baseline=baseline,
                              cache_path=args.cache,
                              use_cache=not args.no_cache)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderers = {"json": render_detsan_json,
                 "sarif": render_detsan_sarif,
                 "dot": render_detsan_dot,
                 "text": render_detsan_text}
    print(renderers[args.format](report))
    return report.exit_code


def _cmd_distcheck(args: argparse.Namespace) -> int:
    # Imported lazily so analysis commands stay import-light.
    from pathlib import Path

    from repro.devtools.analyze import (Baseline, load_baseline,
                                        write_baseline)
    from repro.devtools.distcheck import (
        DistcheckConfig, distcheck_paths, load_distcheck_config,
        render_distcheck_json, render_distcheck_manifest,
        render_distcheck_sarif, render_distcheck_text)
    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        if args.no_config:
            config = DistcheckConfig()
        else:
            config = load_distcheck_config(pyproject=args.config,
                                           start=paths[0])
        baseline = (load_baseline(args.baseline)
                    if args.baseline else None)
        if args.write_baseline:
            # Capture the *unfiltered* findings as the new baseline.
            report = distcheck_paths(paths, config, baseline=Baseline(),
                                     cache_path=args.cache,
                                     use_cache=not args.no_cache)
            write_baseline(args.write_baseline, report.violations)
            print(f"wrote {len(report.violations)} finding(s) to "
                  f"{args.write_baseline}")
            return 0
        report = distcheck_paths(paths, config, baseline=baseline,
                                 cache_path=args.cache,
                                 use_cache=not args.no_cache)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderers = {"json": render_distcheck_json,
                 "sarif": render_distcheck_sarif,
                 "text": render_distcheck_text}
    print(renderers[args.format](report))
    if not args.no_manifest:
        manifest = Path(args.manifest)
        manifest.write_text(render_distcheck_manifest(report),
                            encoding="utf-8")
        print(f"wrote certification manifest {manifest}")
    return report.exit_code


def _check_all() -> int:
    """One blocking pre-merge entry point: all four analysis verbs."""
    from repro.devtools.analyze import (analyze_paths,
                                        load_analyze_config)
    from repro.devtools.detsan import detsan_paths, load_detsan_config
    from repro.devtools.distcheck import (distcheck_paths,
                                          load_distcheck_config)
    from repro.devtools.lintkit import lint_paths, load_config

    paths = ["src"]
    lint_report = lint_paths(paths, load_config(start=paths[0]))
    analyze_report = analyze_paths(
        paths, load_analyze_config(start=paths[0]))
    detsan_report = detsan_paths(
        paths, load_detsan_config(start=paths[0]))
    distcheck_report = distcheck_paths(
        paths, load_distcheck_config(start=paths[0]))

    rows = []
    reports = (("lint", lint_report), ("analyze", analyze_report),
               ("detsan", detsan_report),
               ("distcheck", distcheck_report))
    for name, report in reports:
        extras = []
        for label in ("suppressed", "baselined"):
            count = getattr(report, label, 0)
            if count:
                extras.append(f"{count} {label}")
        detail = f" ({', '.join(extras)})" if extras else ""
        rows.append((name,
                     f"{len(report.violations)} finding(s){detail}",
                     "FAIL" if report.exit_code else "PASS"))
    print(render_table(("tool", "findings", "status"), rows,
                       title="urllc5g check --all"))
    statuses: dict[str, int] = {}
    for cert in distcheck_report.certifications:
        statuses[cert.status] = statuses.get(cert.status, 0) + 1
    summary = ", ".join(f"{count} {status}" for status, count
                        in sorted(statuses.items()))
    print(f"distcheck scenarios: {summary or '(none registered)'}")
    return max(report.exit_code for _, report in reports)


def _cmd_check(args: argparse.Namespace) -> int:
    if args.all:
        return _check_all()
    from repro.devtools.determinism import determinism_report
    if not args.determinism:
        print("nothing to check: pass --determinism or --all")
        return 2
    try:
        report = determinism_report(seed=args.seed,
                                    packets=args.packets,
                                    runs=args.runs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily so analysis commands stay import-light.
    from repro.runner import (
        CAMPAIGNS, CampaignJournal, CampaignRunner, ResultCache,
        bench_payload, build_campaign, check_against_baseline,
        load_baseline, render_baseline, write_bench_json)
    if args.worker is not None:
        # Worker mode: attach to a dispatch queue directory and exit
        # when the campaign is drained.  No campaign name, cache or
        # journal flags apply — everything comes from the queue.
        from repro.runner import run_worker
        if args.campaign is not None or args.dispatch is not None:
            print("error: --worker takes no campaign name and is "
                  "mutually exclusive with --dispatch",
                  file=sys.stderr)
            return 2
        worker_id = args.worker_id or f"w{os.getpid()}"
        return run_worker(args.worker, worker_id,
                          max_retries=args.retries,
                          strikes=args.strikes)
    if args.list:
        for name in sorted(CAMPAIGNS):
            print(f"{name}: {len(build_campaign(name))} point(s)")
        return 0
    if args.campaign is None:
        print("error: campaign name required (or --list)",
              file=sys.stderr)
        return 2
    if args.resume and args.no_journal:
        print("error: --resume requires a journal (drop --no-journal)",
              file=sys.stderr)
        return 2
    if args.dispatch is not None:
        if args.dispatch < 1:
            print(f"error: --dispatch must be >= 1, got "
                  f"{args.dispatch}", file=sys.stderr)
            return 2
        if args.workers != 1:
            print("error: --dispatch spawns its own worker processes; "
                  "drop --workers", file=sys.stderr)
            return 2
        if args.resume:
            print("error: --resume is not supported with --dispatch "
                  "(the queue is rebuilt each run; warm points replay "
                  "from the result cache instead)", file=sys.stderr)
            return 2
    try:
        campaign = build_campaign(args.campaign)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.sanitize:
        # Environment (not a flag threaded through the runner) so
        # spawned worker processes inherit it; streams are wrapped in
        # recording proxies at creation time (see repro.sim.sanitize).
        # Sanitized runs are bit-identical, so cached results stay
        # valid either way.
        os.environ["URLLC5G_SANITIZE"] = "1"
    cache = None if args.no_cache else ResultCache(args.cache)
    journal_path = None
    if not args.no_journal:
        journal_path = (args.journal
                        or f".urllc5g-{campaign.name}.journal.jsonl")
    if args.profile:
        from repro.devtools.profile import (
            profile_call, write_profile_json)
    if args.dispatch is not None:
        import shutil

        from repro.devtools.distcheck.manifest import (
            ManifestError, load_manifest)
        from repro.runner.dispatch import (
            MERGED_JOURNAL_NAME, DispatchCoordinator,
            DispatchRefusedError)
        try:
            manifest = load_manifest(args.manifest)
        except ManifestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        queue_dir = Path(args.queue_dir
                         or f".urllc5g-{campaign.name}.queue")
        coordinator = DispatchCoordinator(
            workers=args.dispatch, queue_dir=queue_dir,
            manifest=manifest, cache=cache,
            max_retries=args.retries)
        try:
            if args.profile:
                result, report = profile_call(
                    lambda: coordinator.run(campaign))
            else:
                result = coordinator.run(campaign)
        except (DispatchRefusedError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # The merged journal is serial-equivalent: copy it to the
        # standard journal path so a later (non-dispatched) --resume
        # picks it up exactly as if this run had been serial.
        if journal_path is not None:
            shutil.copyfile(queue_dir / MERGED_JOURNAL_NAME,
                            journal_path)
        if not args.keep_queue:
            shutil.rmtree(queue_dir, ignore_errors=True)
    else:
        journal = None
        if journal_path is not None:
            journal = CampaignJournal(journal_path)
        with CampaignRunner(workers=args.workers, cache=cache,
                            timeout_s=args.timeout_s,
                            max_retries=args.retries) as runner:
            if args.profile:
                result, report = profile_call(
                    lambda: runner.run(campaign, journal=journal,
                                       resume=args.resume))
            else:
                result = runner.run(campaign, journal=journal,
                                    resume=args.resume)
        if journal is not None:
            journal.close()
    payload = bench_payload(result)
    output = args.output or f"BENCH_{campaign.name}.json"
    write_bench_json(output, payload)
    if args.profile:
        profile_path = Path(output).with_name(
            f"PROFILE_{campaign.name}.json")
        write_profile_json(profile_path, campaign.name, report)
        hottest = next(iter(report.modules), "-")
        print(f"profile: {report.total_time_s:.2f}s under cProfile, "
              f"hottest module {hottest} -> {profile_path}")
    print(f"campaign {campaign.name}: {payload['points']} point(s) on "
          f"{payload['workers']} worker(s) in "
          f"{payload['wall_clock_s']:.2f}s wall-clock, cache hit-rate "
          f"{payload['cache']['hit_rate']:.1%} -> {output}")
    if payload["journal_replays"] or payload["retries"]:
        print(f"resilience: {payload['journal_replays']} point(s) "
              f"replayed from the journal, {payload['retries']} "
              "retr(y/ies)")
    if payload.get("dispatch"):
        stats = payload["dispatch"]
        print(f"dispatch: {stats['jobs']} job(s) across "
              f"{stats['workers']} worker(s), {stats['steals']} "
              f"steal(s), {stats['lease_expirations']} expired "
              f"lease(s), {stats['reclaims']} reclaim(s), "
              f"{stats['inline_points']} inline point(s)")
        degraded = {key: stats.get(key, 0)
                    for key in ("quarantined_files", "heartbeat_drops",
                                "event_drops", "journal_drops")
                    if stats.get(key)}
        if degraded:
            detail = ", ".join(f"{count} {name.replace('_', ' ')}"
                               for name, count in degraded.items())
            print(f"degraded: {detail} (run completed; see "
                  "docs/ROBUSTNESS.md)")
    for warning in payload["warnings"]:
        print(f"warning: {warning}", file=sys.stderr)
    for failure in payload["failed_points"]:
        print(f"FAILED: {failure['label']} after "
              f"{failure['attempts']} attempt(s): {failure['error']}",
              file=sys.stderr)
    failed = bool(payload["failed_points"])
    if args.write_baseline:
        write_bench_json(args.write_baseline, render_baseline(payload))
        print(f"wrote baseline {args.write_baseline} "
              f"({len(payload['metrics'])} metric(s))")
        return 1 if failed else 0
    if args.check:
        try:
            baseline = load_baseline(args.check)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        outcome = check_against_baseline(payload, baseline)
        print(outcome.render())
        return 0 if outcome.ok and not failed else 1
    return 1 if failed else 0


def _cmd_chaosdispatch(args: argparse.Namespace) -> int:
    # Imported lazily so analysis commands stay import-light.
    import json
    import shutil
    import tempfile

    from repro.devtools.distcheck.manifest import (ManifestError,
                                                   load_manifest)
    from repro.runner import build_campaign
    from repro.runner.chaos import certify_dispatch
    try:
        campaign = build_campaign(args.campaign)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    work_dir = args.work_dir or tempfile.mkdtemp(
        prefix=f"urllc5g-chaos-{campaign.name}-")
    try:
        report = certify_dispatch(
            campaign, manifest, work_dir=work_dir,
            workers=args.workers, exhaustive=args.exhaustive,
            seed=args.seed, log=print)
    finally:
        if args.work_dir is None:
            shutil.rmtree(work_dir, ignore_errors=True)
    output = args.output or f"CHAOS_{campaign.name}.json"
    Path(output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    failed = [entry["label"] for entry in report["schedules"]
              if not (entry["converged"] and entry["identical"])]
    total = len(report["schedules"])
    print(f"chaos certification: {total - len(failed)}/{total} "
          f"schedule(s) converged bit-identical to serial -> {output}")
    for label in failed:
        print(f"NOT CERTIFIED: {label}", file=sys.stderr)
    return 0 if report["certified"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="urllc5g",
        description="System-level 5G URLLC latency analysis "
                    "(HotNets '24 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="the Table 1 matrix")
    table1.add_argument("--mu", type=int, default=2)
    table1.set_defaults(func=_cmd_table1)

    fig4 = sub.add_parser("fig4", help="DM worst cases (Fig 4)")
    fig4.add_argument("--mu", type=int, default=2)
    fig4.set_defaults(func=_cmd_fig4)

    journey = sub.add_parser("journey",
                             help="traced ping breakdown (Fig 3)")
    journey.add_argument("--grant-free", action="store_true")
    journey.add_argument("--seed", type=int, default=5)
    journey.set_defaults(func=_cmd_journey)

    fig6 = sub.add_parser("fig6",
                          help="testbed latency distributions (Fig 6)")
    fig6.add_argument("--packets", type=int, default=200)
    fig6.add_argument("--seed", type=int, default=11)
    fig6.set_defaults(func=_cmd_fig6)

    sweep = sub.add_parser("sweep",
                           help="slot duration × radio latency (§4)")
    sweep.add_argument("--radio-us", nargs="+",
                       default=["0", "100", "300", "500"])
    sweep.set_defaults(func=_cmd_sweep)

    tech = sub.add_parser("technologies",
                          help="Wi-Fi/Bluetooth/mmWave baselines (§9)")
    tech.add_argument("--seed", type=int, default=3)
    tech.set_defaults(func=_cmd_technologies)

    lint = sub.add_parser(
        "lint", help="domain static analysis (see docs/LINTING.md)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories (default: src)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    lint.add_argument("--select", nargs="*", metavar="RULE",
                      help="run only these rule ids")
    lint.add_argument("--ignore", nargs="*", metavar="RULE",
                      help="additionally disable these rule ids")
    lint.add_argument("--config", default=None,
                      help="explicit pyproject.toml path")
    lint.add_argument("--no-config", action="store_true",
                      help="ignore [tool.urllc5g.lint] entirely")
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="whole-program analysis (see docs/ANALYSIS.md)")
    analyze.add_argument("paths", nargs="*", default=["src"],
                         help="files or directories (default: src)")
    analyze.add_argument("--format",
                         choices=("text", "json", "sarif"),
                         default="text")
    analyze.add_argument("--baseline", default=None, metavar="FILE",
                         help="accepted-findings file "
                              "(overrides pyproject)")
    analyze.add_argument("--write-baseline", default=None,
                         metavar="FILE",
                         help="accept all current findings into FILE "
                              "and exit 0")
    analyze.add_argument("--cache", default=None, metavar="FILE",
                         help="incremental cache location "
                              "(overrides pyproject)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="re-parse every module")
    analyze.add_argument("--config", default=None,
                         help="explicit pyproject.toml path")
    analyze.add_argument("--no-config", action="store_true",
                         help="ignore [tool.urllc5g.analyze] entirely")
    analyze.set_defaults(func=_cmd_analyze)

    detsan = sub.add_parser(
        "detsan",
        help="RNG stream-ownership analysis (see docs/ANALYSIS.md)")
    detsan.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    detsan.add_argument("--format",
                        choices=("text", "json", "sarif", "dot"),
                        default="text",
                        help="dot emits the stream->owner graph")
    detsan.add_argument("--baseline", default=None, metavar="FILE",
                        help="accepted-findings file "
                             "(overrides pyproject)")
    detsan.add_argument("--write-baseline", default=None,
                        metavar="FILE",
                        help="accept all current findings into FILE "
                             "and exit 0")
    detsan.add_argument("--cache", default=None, metavar="FILE",
                        help="incremental cache location "
                             "(overrides pyproject)")
    detsan.add_argument("--no-cache", action="store_true",
                        help="re-parse every module")
    detsan.add_argument("--config", default=None,
                        help="explicit pyproject.toml path")
    detsan.add_argument("--no-config", action="store_true",
                        help="ignore [tool.urllc5g.detsan] entirely")
    detsan.set_defaults(func=_cmd_detsan)

    distcheck = sub.add_parser(
        "distcheck",
        help="distributability certification (see docs/ANALYSIS.md)")
    distcheck.add_argument("paths", nargs="*", default=["src"],
                           help="files or directories (default: src)")
    distcheck.add_argument("--format",
                           choices=("text", "json", "sarif"),
                           default="text")
    distcheck.add_argument("--baseline", default=None, metavar="FILE",
                           help="accepted-findings file "
                                "(overrides pyproject)")
    distcheck.add_argument("--write-baseline", default=None,
                           metavar="FILE",
                           help="accept all current findings into FILE "
                                "and exit 0")
    distcheck.add_argument("--cache", default=None, metavar="FILE",
                           help="incremental cache location "
                                "(overrides pyproject)")
    distcheck.add_argument("--no-cache", action="store_true",
                           help="re-parse every module")
    distcheck.add_argument("--config", default=None,
                           help="explicit pyproject.toml path")
    distcheck.add_argument("--no-config", action="store_true",
                           help="ignore [tool.urllc5g.distcheck] "
                                "entirely")
    distcheck.add_argument("--manifest",
                           default="distcheck-manifest.json",
                           metavar="FILE",
                           help="per-scenario certification manifest "
                                "(default: distcheck-manifest.json)")
    distcheck.add_argument("--no-manifest", action="store_true",
                           help="skip writing the manifest")
    distcheck.set_defaults(func=_cmd_distcheck)

    check = sub.add_parser(
        "check",
        help="aggregate gate (--all) and runtime sanitizers "
             "(--determinism)")
    check.add_argument("--all", action="store_true",
                       help="run lint + analyze + detsan + distcheck "
                            "over src/ and exit with the worst code")
    check.add_argument("--determinism", action="store_true",
                       help="run a scenario twice with the same seed "
                            "and compare trace digests")
    check.add_argument("--seed", type=int, default=7)
    check.add_argument("--packets", type=int, default=40)
    check.add_argument("--runs", type=int, default=2)
    check.set_defaults(func=_cmd_check)

    bench = sub.add_parser(
        "bench",
        help="run a named campaign (see docs/CAMPAIGNS.md)")
    bench.add_argument("campaign", nargs="?", default=None,
                       help="campaign name (see --list)")
    bench.add_argument("--list", action="store_true",
                       help="list known campaigns and exit")
    bench.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial, default)")
    bench.add_argument("--cache", default=".urllc5g-bench-cache.json",
                       metavar="FILE",
                       help="result-cache location")
    bench.add_argument("--no-cache", action="store_true",
                       help="recompute every point")
    bench.add_argument("--output", default=None, metavar="FILE",
                       help="bench document path "
                            "(default: BENCH_<campaign>.json)")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="compare metrics against a baseline file; "
                            "exit 1 on regression, 2 if unreadable")
    bench.add_argument("--write-baseline", default=None, metavar="FILE",
                       help="record this run's metrics as a baseline")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile and write "
                            "PROFILE_<campaign>.json next to the bench "
                            "document (see docs/PERFORMANCE.md)")
    bench.add_argument("--timeout-s", type=float, default=None,
                       metavar="S",
                       help="parallel liveness timeout: if no point "
                            "completes within S seconds the workers "
                            "are killed and their points requeued")
    bench.add_argument("--retries", type=int, default=2, metavar="N",
                       help="extra attempts a failing point gets "
                            "before it is recorded as failed "
                            "(default: 2)")
    bench.add_argument("--journal", default=None, metavar="FILE",
                       help="campaign journal path (default: "
                            ".urllc5g-<campaign>.journal.jsonl)")
    bench.add_argument("--no-journal", action="store_true",
                       help="disable per-point checkpointing")
    bench.add_argument("--resume", action="store_true",
                       help="replay completed points from the journal "
                            "of an interrupted run (docs/ROBUSTNESS.md)")
    bench.add_argument("--sanitize", action="store_true",
                       help="run under the determinism sanitizer "
                            "(URLLC5G_SANITIZE=1): stream draws are "
                            "recorded and ownership violations raise, "
                            "results stay bit-identical")
    bench.add_argument("--dispatch", type=int, default=None,
                       metavar="N",
                       help="distribute the campaign over N worker "
                            "processes through a shared queue "
                            "directory; requires every scenario to be "
                            "certified in the distcheck manifest "
                            "(docs/CAMPAIGNS.md)")
    bench.add_argument("--queue-dir", default=None, metavar="DIR",
                       help="dispatch queue directory (default: "
                            ".urllc5g-<campaign>.queue); put it on a "
                            "shared filesystem to attach workers from "
                            "other hosts")
    bench.add_argument("--keep-queue", action="store_true",
                       help="keep the queue directory (leases, "
                            "events, per-worker journals) after a "
                            "successful dispatched run")
    bench.add_argument("--manifest", default="distcheck-manifest.json",
                       metavar="FILE",
                       help="distcheck certification manifest gating "
                            "--dispatch (default: "
                            "distcheck-manifest.json)")
    bench.add_argument("--worker", default=None, metavar="QUEUE_DIR",
                       help="run as a dispatch worker attached to an "
                            "existing queue directory (no campaign "
                            "name); exits 0 when the queue is drained, "
                            "2 if refusing to participate")
    bench.add_argument("--worker-id", default=None, metavar="ID",
                       help="worker identity inside the queue "
                            "(default: w<pid>)")
    bench.add_argument("--strikes", type=int, default=8, metavar="N",
                       help="worker mode only: heartbeat observations "
                            "without progress before a peer is "
                            "declared dead (default: 8)")
    bench.set_defaults(func=_cmd_bench)

    chaos = sub.add_parser(
        "chaosdispatch",
        help="certify dispatch against filesystem faults and worker "
             "crashes at every protocol crash point "
             "(docs/ROBUSTNESS.md)")
    chaos.add_argument("--campaign", default="smoke",
                       help="campaign to certify (default: smoke)")
    chaos.add_argument("--workers", type=int, default=2,
                       help="worker processes per schedule "
                            "(default: 2; minimum 2)")
    chaos.add_argument("--manifest", default="distcheck-manifest.json",
                       metavar="FILE",
                       help="distcheck certification manifest gating "
                            "dispatch (default: "
                            "distcheck-manifest.json)")
    chaos.add_argument("--output", default=None, metavar="FILE",
                       help="certification document path "
                            "(default: CHAOS_<campaign>.json)")
    chaos.add_argument("--work-dir", default=None, metavar="DIR",
                       help="queue/marker scratch directory (kept "
                            "afterwards; default: a temp dir, "
                            "removed)")
    chaos.add_argument("--exhaustive", action="store_true",
                       help="target every worker with every schedule "
                            "(nightly mode) instead of the first only")
    chaos.add_argument("--seed", type=int, default=None,
                       help="chaos RNG seed (default: the campaign "
                            "seed)")
    chaos.set_defaults(func=_cmd_chaosdispatch)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args) or 0)


if __name__ == "__main__":
    sys.exit(main())
