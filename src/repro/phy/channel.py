"""Wireless channel models.

The paper's latency argument mostly assumes a working link, but its
reliability discussion (§6) and its case against FR2 mmWave (§1, §5)
need channel behaviour:

- :class:`IidErasureChannel` — independent block errors at a fixed BLER;
  adequate for FR1 sub-6 GHz links at URLLC operating points.
- :class:`GilbertElliottChannel` — two-state (LoS / blocked) Markov
  channel with exponential sojourn times; models mmWave line-of-sight
  blockage, where the blocked state makes delivery essentially
  impossible and is the reason "sub-millisecond latencies in 5G mmWave
  can be achieved only 4.4 % of the time" (§1, citing Fezeu et al.).

Propagation delay is also provided; at URLLC cell sizes it is well under
a microsecond and routinely dominated by everything else — the library
still accounts for it so the budget decomposition is complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.phy.timebase import tc_from_us

__all__ = [
    "SPEED_OF_LIGHT_M_PER_S",
    "propagation_delay_tc",
    "Channel",
    "PerfectChannel",
    "IidErasureChannel",
    "GilbertElliottChannel",
]

#: Speed of light (m/s), for propagation delay.
SPEED_OF_LIGHT_M_PER_S: float = 299_792_458.0


def propagation_delay_tc(distance_m: float) -> int:
    """One-way propagation delay over ``distance_m`` metres, in Tc."""
    if distance_m < 0:
        raise ValueError(f"distance must be >= 0, got {distance_m}")
    return tc_from_us(distance_m / SPEED_OF_LIGHT_M_PER_S * 1e6)


class Channel(Protocol):
    """Minimal interface the PHY uses to decide transmission fate."""

    def delivered(self, now: int, rng: np.random.Generator) -> bool:
        """Whether a transport block sent at tick ``now`` decodes."""
        ...


@dataclass
class PerfectChannel:
    """Always delivers; the default for protocol-latency experiments."""

    def delivered(self, now: int, rng: np.random.Generator) -> bool:
        return True


@dataclass
class IidErasureChannel:
    """Independent block errors at a fixed block-error rate.

    URLLC FR1 operating points target BLER around 1e-5 after HARQ; the
    first-transmission BLER is typically 1e-2..1e-3.
    """

    bler: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.bler <= 1.0:
            raise ValueError(f"bler must be in [0, 1], got {self.bler}")

    def delivered(self, now: int, rng: np.random.Generator) -> bool:
        return rng.random() >= self.bler

    def delivered_from_uniform(self, u: float) -> bool:
        """Fate from an externally drawn uniform.

        Exposing this (rather than the generator-consuming
        :meth:`delivered`) is what lets :class:`repro.net.link.AirLink`
        serve the draw from a pre-filled uniform block: delivery here
        consumes exactly one uniform per call, unconditionally, so a
        buffered stream stays aligned with the scalar one.  The
        state-dependent :class:`GilbertElliottChannel` deliberately does
        not implement it.
        """
        return u >= self.bler


@dataclass
class GilbertElliottChannel:
    """Two-state blockage channel with exponential sojourn times.

    State GOOD (line of sight) delivers with ``1 - bler_good``; state BAD
    (blocked) with ``1 - bler_bad``.  Sojourn times are exponential with
    the given means (in Tc).  The state trajectory is sampled lazily and
    deterministically from the generator passed to :meth:`delivered`, so
    runs stay reproducible.

    ``stationary_good_fraction`` gives the long-run fraction of time with
    line of sight — the knob calibrated against the mmWave measurement
    study in :mod:`repro.baselines.mmwave`.
    """

    mean_good_tc: int
    mean_bad_tc: int
    bler_good: float = 0.0
    bler_bad: float = 1.0
    _state_good: bool = field(default=True, repr=False)
    _next_transition: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        if self.mean_good_tc <= 0 or self.mean_bad_tc <= 0:
            raise ValueError("sojourn means must be positive")
        for name in ("bler_good", "bler_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def stationary_good_fraction(self) -> float:
        """Long-run fraction of time spent in the GOOD state."""
        return self.mean_good_tc / (self.mean_good_tc + self.mean_bad_tc)

    def _advance(self, now: int, rng: np.random.Generator) -> None:
        if self._next_transition < 0:
            self._next_transition = now + self._draw_sojourn(rng)
        while self._next_transition <= now:
            self._state_good = not self._state_good
            self._next_transition += self._draw_sojourn(rng)

    def _draw_sojourn(self, rng: np.random.Generator) -> int:
        mean = self.mean_good_tc if self._state_good else self.mean_bad_tc
        return max(1, int(rng.exponential(mean)))

    def is_good(self, now: int, rng: np.random.Generator) -> bool:
        """Whether the link has line of sight at tick ``now``."""
        self._advance(now, rng)
        return self._state_good

    def delivered(self, now: int, rng: np.random.Generator) -> bool:
        self._advance(now, rng)
        bler = self.bler_good if self._state_good else self.bler_bad
        return rng.random() >= bler
