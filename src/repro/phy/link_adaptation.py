"""Link adaptation: the MCS ↔ BLER ↔ latency trade-off (paper §6).

The first face of URLLC reliability is the wireless channel, where
channel coding "offers a range of trade-offs" (the paper cites Sybis et
al.): a conservative MCS spends resource elements to push the
block-error rate down (fewer HARQ round trips, bigger transport
blocks needed per byte), an aggressive MCS does the opposite.

The model is the standard AWGN abstraction: each MCS has a waterfall
BLER curve positioned at the Shannon-limit SNR for its spectral
efficiency plus a fixed implementation gap, with an exponential-ish
slope.  It is deliberately simple — the experiments need the *shape*
(monotone waterfall per MCS, curves ordered by efficiency), not a
link-level simulator.
"""

from __future__ import annotations

import math

from repro.phy.transport import MCS_TABLE_64QAM, mcs

__all__ = [
    "IMPLEMENTATION_GAP_DB",
    "waterfall_snr_db",
    "bler_at",
    "required_snr_db",
    "select_mcs",
    "efficiency_at",
]

#: Gap to Shannon capacity of a practical LDPC at moderate block
#: lengths (dB).
IMPLEMENTATION_GAP_DB: float = 2.0

#: Waterfall steepness: BLER drops one decade per this many dB.
_DECADE_DB: float = 1.5


def waterfall_snr_db(mcs_index: int) -> float:
    """SNR at which the MCS reaches 50 % BLER."""
    efficiency = mcs(mcs_index).efficiency
    shannon_db = 10.0 * math.log10(2.0 ** efficiency - 1.0)
    return shannon_db + IMPLEMENTATION_GAP_DB


def bler_at(mcs_index: int, snr_db: float) -> float:
    """Block-error rate of ``mcs_index`` at ``snr_db`` (AWGN model)."""
    margin_db = snr_db - waterfall_snr_db(mcs_index)
    bler = 0.5 * 10.0 ** (-margin_db / _DECADE_DB)
    return min(1.0, max(0.0, bler))


def required_snr_db(mcs_index: int, target_bler: float) -> float:
    """SNR needed for the MCS to reach a target BLER."""
    if not 0.0 < target_bler < 1.0:
        raise ValueError(f"target BLER must be in (0, 1), got "
                         f"{target_bler}")
    margin_db = -_DECADE_DB * math.log10(2.0 * target_bler)
    return waterfall_snr_db(mcs_index) + margin_db


def select_mcs(snr_db: float, target_bler: float = 1e-3) -> int:
    """Highest MCS meeting the BLER target at the given SNR.

    Falls back to MCS 0 when even that misses the target (cell edge) —
    the caller decides whether the residual BLER is tolerable.
    """
    best = 0
    for index in sorted(MCS_TABLE_64QAM):
        if bler_at(index, snr_db) <= target_bler:
            best = index
    return best


def efficiency_at(snr_db: float, target_bler: float = 1e-3) -> float:
    """Spectral efficiency (bits/RE) delivered at the BLER target."""
    return mcs(select_mcs(snr_db, target_bler)).efficiency
