"""NR operating bands relevant to the paper's analysis.

Only the properties the paper reasons about are modelled:

- frequency range (FR1 vs FR2) → which numerologies are available,
- duplex mode (TDD vs FDD) → which MAC configurations are possible,
- carrier frequency → FDD is "restricted to frequencies below 2.6 GHz"
  (paper §5), hence not available to private 5G deployments.

The catalogue is a representative subset of TS 38.101; ``n78`` is the
band used by the paper's testbed (§7).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.phy.numerology import FrequencyRange

__all__ = [
    "DuplexMode",
    "FDD_MAX_FREQUENCY_GHZ",
    "Band",
    "BANDS",
    "get_band",
    "fdd_bands",
    "private_5g_bands",
]


class DuplexMode(Enum):
    """Duplexing scheme of an operating band."""

    TDD = "TDD"
    FDD = "FDD"
    SDL = "SDL"  #: supplemental downlink (not usable for URLLC UL)


#: FDD in terrestrial 5G is only supported below this carrier frequency
#: (paper §2: "FDD is only supported in sub-2.6 GHz bands").
FDD_MAX_FREQUENCY_GHZ: float = 2.6


@dataclass(frozen=True)
class Band:
    """One NR operating band."""

    name: str
    duplex: DuplexMode
    low_ghz: float
    high_ghz: float

    @property
    def frequency_range(self) -> FrequencyRange:
        """FR1 below 7.125 GHz, FR2 above 24.25 GHz."""
        if self.high_ghz <= 7.125:
            return FrequencyRange.FR1
        if self.low_ghz >= 24.25:
            return FrequencyRange.FR2
        raise ValueError(f"band {self.name} straddles FR1/FR2")

    @property
    def numerologies(self) -> tuple[int, ...]:
        """Numerologies usable in this band."""
        return self.frequency_range.numerologies

    @property
    def center_ghz(self) -> float:
        return (self.low_ghz + self.high_ghz) / 2

    def supports_private_5g(self) -> bool:
        """Whether the band is plausibly allocatable to private 5G.

        The paper (§2, §9): private networks get TDD mid-band spectrum;
        sub-2.6 GHz FDD bands are held by public operators.
        """
        return self.duplex is DuplexMode.TDD

    def __str__(self) -> str:
        return (f"{self.name} ({self.duplex.value}, "
                f"{self.low_ghz:g}-{self.high_ghz:g} GHz, "
                f"{self.frequency_range.value})")


#: Catalogue of bands referenced in the analysis.
BANDS: dict[str, Band] = {
    band.name: band
    for band in (
        Band("n1", DuplexMode.FDD, 1.920, 2.170),
        Band("n3", DuplexMode.FDD, 1.710, 1.880),
        Band("n7", DuplexMode.FDD, 2.500, 2.690),
        Band("n28", DuplexMode.FDD, 0.703, 0.803),
        Band("n40", DuplexMode.TDD, 2.300, 2.400),
        Band("n41", DuplexMode.TDD, 2.496, 2.690),
        Band("n77", DuplexMode.TDD, 3.300, 4.200),
        Band("n78", DuplexMode.TDD, 3.300, 3.800),   # testbed band (§7)
        Band("n79", DuplexMode.TDD, 4.400, 5.000),
        Band("n258", DuplexMode.TDD, 24.250, 27.500),
        Band("n260", DuplexMode.TDD, 37.000, 40.000),
        Band("n261", DuplexMode.TDD, 27.500, 28.350),
    )
}


def get_band(name: str) -> Band:
    """Look up a band by name; raises KeyError with the known names."""
    try:
        return BANDS[name]
    except KeyError:
        known = ", ".join(sorted(BANDS))
        raise KeyError(f"unknown band {name!r}; known bands: {known}")


def fdd_bands() -> list[Band]:
    """All FDD bands in the catalogue (all are sub-2.6 GHz)."""
    return [b for b in BANDS.values() if b.duplex is DuplexMode.FDD]


def private_5g_bands() -> list[Band]:
    """Bands plausibly available to private 5G deployments (TDD only)."""
    return [b for b in BANDS.values() if b.supports_private_5g()]
