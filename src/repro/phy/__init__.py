"""Physical-layer substrate: timebase, numerology, frames, OFDM, channel."""

from repro.phy.bands import BANDS, Band, DuplexMode, get_band
from repro.phy.channel import (
    GilbertElliottChannel,
    IidErasureChannel,
    PerfectChannel,
    propagation_delay_tc,
)
from repro.phy.frame import FrameStructure, SlotAddress
from repro.phy.link_adaptation import (
    bler_at,
    efficiency_at,
    required_snr_db,
    select_mcs,
)
from repro.phy.numerology import (
    SYMBOLS_PER_SLOT,
    FrequencyRange,
    Numerology,
)
from repro.phy.ofdm import Carrier
from repro.phy.transport import (
    Mcs,
    mcs,
    prbs_needed,
    transport_block_size,
)

__all__ = [
    "BANDS",
    "Band",
    "DuplexMode",
    "get_band",
    "GilbertElliottChannel",
    "IidErasureChannel",
    "PerfectChannel",
    "propagation_delay_tc",
    "FrameStructure",
    "SlotAddress",
    "bler_at",
    "efficiency_at",
    "required_snr_db",
    "select_mcs",
    "SYMBOLS_PER_SLOT",
    "FrequencyRange",
    "Numerology",
    "Carrier",
    "Mcs",
    "mcs",
    "prbs_needed",
    "transport_block_size",
]
