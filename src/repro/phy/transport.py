"""Transport-block sizing (TS 38.214 §5.1.3).

The MAC scheduler needs to know how many bits fit in an allocation of
``n_prb × n_symbols`` at a given MCS, both to size ping payloads into
slots and to reason about grant-free pre-allocation waste.  We implement
the standard's actual two-regime TBS determination (table lookup below
3824 bits, formula above) so allocation maths matches real stacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "MCS_TABLE_64QAM",
    "TBS_TABLE",
    "Mcs",
    "mcs",
    "transport_block_size",
    "prbs_needed",
]

#: MCS index → (modulation order Qm, code rate × 1024).
#: TS 38.214 table 5.1.3.1-1 (the 64QAM table used by the testbed).
MCS_TABLE_64QAM: dict[int, tuple[int, int]] = {
    0: (2, 120), 1: (2, 157), 2: (2, 193), 3: (2, 251), 4: (2, 308),
    5: (2, 379), 6: (2, 449), 7: (2, 526), 8: (2, 602), 9: (2, 679),
    10: (4, 340), 11: (4, 378), 12: (4, 434), 13: (4, 490), 14: (4, 553),
    15: (4, 616), 16: (4, 658), 17: (6, 438), 18: (6, 466), 19: (6, 517),
    20: (6, 567), 21: (6, 616), 22: (6, 666), 23: (6, 719), 24: (6, 772),
    25: (6, 822), 26: (6, 873), 27: (6, 910), 28: (6, 948),
}

#: TS 38.214 table 5.1.3.2-1: allowed transport-block sizes ≤ 3824 bits.
TBS_TABLE: tuple[int, ...] = (
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136,
    144, 152, 160, 168, 176, 184, 192, 208, 224, 240, 256, 272, 288,
    304, 320, 336, 352, 368, 384, 408, 432, 456, 480, 504, 528, 552,
    576, 608, 640, 672, 704, 736, 768, 808, 848, 888, 928, 984, 1032,
    1064, 1128, 1160, 1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480,
    1544, 1608, 1672, 1736, 1800, 1864, 1928, 2024, 2088, 2152, 2216,
    2280, 2408, 2472, 2536, 2600, 2664, 2728, 2792, 2856, 2976, 3104,
    3240, 3368, 3496, 3624, 3752, 3824,
)


@dataclass(frozen=True)
class Mcs:
    """One modulation-and-coding-scheme point."""

    index: int
    modulation_order: int  #: bits per symbol (Qm)
    code_rate_x1024: int

    @property
    def code_rate(self) -> float:
        return self.code_rate_x1024 / 1024.0

    @property
    def efficiency(self) -> float:
        """Information bits per resource element."""
        return self.modulation_order * self.code_rate


def mcs(index: int) -> Mcs:
    """MCS entry from the 64QAM table."""
    try:
        order, rate = MCS_TABLE_64QAM[index]
    except KeyError:
        raise ValueError(f"MCS index must be in 0..28, got {index}") from None
    return Mcs(index, order, rate)


def transport_block_size(n_re: int, mcs_index: int, n_layers: int = 1) -> int:
    """Transport-block size in bits (TS 38.214 §5.1.3.2).

    Args:
        n_re: data resource elements in the allocation (already net of
            DMRS/control overhead; see
            :meth:`repro.phy.ofdm.Carrier.resource_elements`).
        mcs_index: row of the 64QAM MCS table.
        n_layers: MIMO layers (the testbed uses 1).
    """
    if n_re < 0:
        raise ValueError(f"n_re must be >= 0, got {n_re}")
    if n_layers < 1:
        raise ValueError(f"n_layers must be >= 1, got {n_layers}")
    if n_re == 0:
        return 0
    scheme = mcs(mcs_index)
    n_info = n_re * scheme.code_rate * scheme.modulation_order * n_layers
    if n_info <= 0:
        return 0
    if n_info <= 3824:
        n = max(3, int(math.floor(math.log2(n_info))) - 6)
        quantized = max(24, (1 << n) * int(n_info) // (1 << n))
        for size in TBS_TABLE:
            if size >= quantized:
                return size
        return TBS_TABLE[-1]
    # Large-TBS regime with code-block segmentation.
    n = int(math.floor(math.log2(n_info - 24))) - 5
    quantized = max(3840, (1 << n) * round((n_info - 24) / (1 << n)))
    if scheme.code_rate <= 0.25:
        c = math.ceil((quantized + 24) / 3816)
        return 8 * c * math.ceil((quantized + 24) / (8 * c)) - 24
    if quantized > 8424:
        c = math.ceil((quantized + 24) / 8424)
        return 8 * c * math.ceil((quantized + 24) / (8 * c)) - 24
    return 8 * math.ceil((quantized + 24) / 8) - 24


def prbs_needed(payload_bits: int, re_per_prb: int, mcs_index: int,
                max_prb: int) -> int:
    """Smallest PRB count whose TBS carries ``payload_bits``.

    Returns ``max_prb + 1`` when the payload cannot fit, letting callers
    detect segmentation is required.
    """
    if payload_bits <= 0:
        return 0
    for n_prb in range(1, max_prb + 1):
        if transport_block_size(n_prb * re_per_prb, mcs_index) >= payload_bits:
            return n_prb
    return max_prb + 1
