"""OFDM resource grid and sampling quantities.

Models just enough of TS 38.101 / 38.211 frequency-domain structure to
size transmissions and radio-sample transfers:

- the carrier's resource-block count for a (bandwidth, SCS) pair,
- the FFT size and resulting sample rate (which fixes how many I/Q
  samples per slot the radio interface must move — the x-axis of the
  paper's Fig 5),
- resource-element counting for transport-block sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.numerology import SYMBOLS_PER_SLOT, Numerology

__all__ = ["SUBCARRIERS_PER_PRB", "n_rb_for", "fft_size_for", "Carrier"]

#: Subcarriers per physical resource block.
SUBCARRIERS_PER_PRB: int = 12

#: Maximum transmission bandwidth configuration N_RB (TS 38.101-1
#: table 5.3.2-1), indexed by (channel bandwidth MHz, SCS kHz).
_N_RB_TABLE: dict[tuple[int, int], int] = {
    (5, 15): 25, (5, 30): 11,
    (10, 15): 52, (10, 30): 24, (10, 60): 11,
    (15, 15): 79, (15, 30): 38, (15, 60): 18,
    (20, 15): 106, (20, 30): 51, (20, 60): 24,
    (25, 15): 133, (25, 30): 65, (25, 60): 31,
    (30, 15): 160, (30, 30): 78, (30, 60): 38,
    (40, 15): 216, (40, 30): 106, (40, 60): 51,
    (50, 15): 270, (50, 30): 133, (50, 60): 65,
    (60, 30): 162, (60, 60): 79,
    (80, 30): 217, (80, 60): 107,
    (100, 30): 273, (100, 60): 135,
    # FR2 entries (SCS 120 kHz)
    (50, 120): 32, (100, 120): 66, (200, 120): 132, (400, 120): 264,
}

#: FFT sizes commonly used by software radios (srsRAN picks the smallest
#: size from this list that fits the occupied subcarriers).
_FFT_SIZES = (128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096)


def n_rb_for(bandwidth_mhz: int, scs_khz: int) -> int:
    """Resource blocks for a channel bandwidth / SCS combination."""
    try:
        return _N_RB_TABLE[(bandwidth_mhz, scs_khz)]
    except KeyError:
        raise ValueError(
            f"no N_RB entry for {bandwidth_mhz} MHz @ {scs_khz} kHz; "
            "see TS 38.101-1 table 5.3.2-1") from None


def fft_size_for(n_rb: int) -> int:
    """Smallest catalogue FFT size covering ``n_rb`` resource blocks."""
    occupied = n_rb * SUBCARRIERS_PER_PRB
    for size in _FFT_SIZES:
        if size >= occupied:
            return size
    raise ValueError(f"{n_rb} PRBs exceed the largest FFT size")


@dataclass(frozen=True)
class Carrier:
    """One configured NR carrier.

    The testbed configuration of the paper (§7) is
    ``Carrier(numerology=Numerology(1), bandwidth_mhz=20)`` on band n78
    (SCS 30 kHz → 0.5 ms slots).
    """

    numerology: Numerology
    bandwidth_mhz: int

    @property
    def n_rb(self) -> int:
        """Carrier resource blocks."""
        return n_rb_for(self.bandwidth_mhz, self.numerology.scs_khz)

    @property
    def fft_size(self) -> int:
        """FFT size used by the (software) PHY."""
        return fft_size_for(self.n_rb)

    @property
    def sample_rate_hz(self) -> int:
        """I/Q sample rate = FFT size × SCS."""
        return self.fft_size * self.numerology.scs_khz * 1000

    @property
    def subcarriers(self) -> int:
        """Occupied subcarriers."""
        return self.n_rb * SUBCARRIERS_PER_PRB

    def samples_per_slot(self) -> int:
        """I/Q samples the radio must move per slot (nominal)."""
        # Nominal slot duration; the ±16κ CP difference is < 1 sample
        # of error per half-subframe and irrelevant to transfer sizing.
        return round(self.sample_rate_hz
                     / (1000 * self.numerology.slots_per_subframe))

    def samples_per_symbols(self, n_symbols: int) -> int:
        """Approximate samples spanning ``n_symbols`` OFDM symbols."""
        if not 0 <= n_symbols <= SYMBOLS_PER_SLOT:
            raise ValueError(f"n_symbols must be in 0..14, got {n_symbols}")
        return round(self.samples_per_slot() * n_symbols
                     / SYMBOLS_PER_SLOT)

    def resource_elements(self, n_prb: int, n_symbols: int,
                          overhead_re_per_prb: int = 18) -> int:
        """Data resource elements in an allocation.

        ``overhead_re_per_prb`` approximates DMRS + control overhead per
        PRB per slot (TS 38.214 §5.1.3.2 uses a similar fixed overhead).
        """
        if n_prb < 0 or n_prb > self.n_rb:
            raise ValueError(
                f"n_prb must be in 0..{self.n_rb}, got {n_prb}")
        total = n_prb * SUBCARRIERS_PER_PRB * n_symbols
        overhead = n_prb * overhead_re_per_prb * n_symbols // SYMBOLS_PER_SLOT
        return max(0, total - overhead)

    def __str__(self) -> str:
        return (f"{self.bandwidth_mhz} MHz @ {self.numerology} "
                f"({self.n_rb} PRB, {self.sample_rate_hz / 1e6:g} MS/s)")
