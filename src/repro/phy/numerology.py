"""NR numerologies (TS 38.211 §4.2-4.3).

A *numerology* µ fixes the subcarrier spacing (SCS = 15 kHz · 2^µ) and
therefore the slot duration (1 ms / 2^µ — 14 OFDM symbols per slot with
normal cyclic prefix).  Higher numerologies are the paper's "key enabler
for low-latency communication".

Frequency-range availability follows the paper (§2): numerologies 0-2 in
FR1 (sub-6 GHz), 2-6 in FR2 (mmWave, 24.25-52.6 GHz).  The extreme is
µ=6 → 15.625 µs slots, the value the paper quotes for mmWave.

Cyclic-prefix accounting is exact: with normal CP every OFDM symbol lasts
``(2048 + 144)·κ·2^-µ`` Tc except the first symbol of each half-subframe,
which carries an extra ``16·κ`` Tc.  Summing one subframe always yields
exactly 1 966 080 Tc = 1 ms, for every µ — a property the test-suite
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from repro.phy.timebase import KAPPA, TC_PER_SUBFRAME

__all__ = [
    "SYMBOLS_PER_SLOT",
    "VALID_MU",
    "FrequencyRange",
    "Numerology",
    "symbol_lengths_in_subframe",
    "symbol_starts_in_subframe",
    "slot_starts_in_subframe",
]

#: OFDM symbols per slot with normal cyclic prefix.
SYMBOLS_PER_SLOT: int = 14

#: Numerologies defined by the standard.
VALID_MU = range(0, 7)


class FrequencyRange(Enum):
    """NR frequency ranges."""

    FR1 = "FR1"  #: 410 MHz - 7.125 GHz ("sub-6")
    FR2 = "FR2"  #: 24.25 - 52.6 GHz (mmWave)

    @property
    def numerologies(self) -> tuple[int, ...]:
        """Numerologies available in the range (paper §2)."""
        if self is FrequencyRange.FR1:
            return (0, 1, 2)
        return (2, 3, 4, 5, 6)


@dataclass(frozen=True)
class Numerology:
    """One NR numerology µ and its derived timing quantities."""

    mu: int

    def __post_init__(self) -> None:
        if self.mu not in VALID_MU:
            raise ValueError(f"numerology µ must be in 0..6, got {self.mu}")

    # ------------------------------------------------------------------
    # frequency-domain quantities
    # ------------------------------------------------------------------
    @property
    def scs_khz(self) -> int:
        """Subcarrier spacing in kHz: 15 · 2^µ."""
        return 15 * 2 ** self.mu

    # ------------------------------------------------------------------
    # time-domain quantities
    # ------------------------------------------------------------------
    @property
    def slots_per_subframe(self) -> int:
        """Slots in one 1 ms subframe: 2^µ."""
        return 2 ** self.mu

    @property
    def slots_per_frame(self) -> int:
        """Slots in one 10 ms radio frame."""
        return 10 * self.slots_per_subframe

    @property
    def slot_duration_tc(self) -> int:
        """Nominal slot duration in Tc (1 ms / 2^µ).

        Exact per-slot durations differ by ±16κ because of the long CP at
        half-subframe boundaries; use :func:`symbol_lengths_in_subframe`
        when the distinction matters.  Slot *starts* are still exactly at
        multiples of this value only for µ ≤ 1; see
        :class:`repro.phy.frame.FrameStructure` for exact boundaries.
        """
        return TC_PER_SUBFRAME // self.slots_per_subframe

    @property
    def slot_duration_ms(self) -> float:
        """Nominal slot duration in milliseconds."""
        return 1.0 / self.slots_per_subframe

    @property
    def symbol_duration_useful_tc(self) -> int:
        """Useful (FFT) part of one OFDM symbol: 2048·κ·2^-µ Tc."""
        return 2048 * KAPPA // 2 ** self.mu

    @property
    def cp_normal_tc(self) -> int:
        """Normal cyclic-prefix length: 144·κ·2^-µ Tc."""
        return 144 * KAPPA // 2 ** self.mu

    @property
    def cp_extension_tc(self) -> int:
        """Extra CP on the first symbol of each half-subframe: 16·κ Tc."""
        return 16 * KAPPA

    def frequency_ranges(self) -> tuple[FrequencyRange, ...]:
        """Frequency ranges in which this numerology is available."""
        return tuple(fr for fr in FrequencyRange
                     if self.mu in fr.numerologies)

    def __str__(self) -> str:
        return (f"µ={self.mu} (SCS {self.scs_khz} kHz, "
                f"slot {self.slot_duration_ms:g} ms)")


@lru_cache(maxsize=None)
def symbol_lengths_in_subframe(mu: int) -> tuple[int, ...]:
    """Exact Tc length of each OFDM symbol in one subframe.

    Symbols ``l = 0`` and ``l = 7·2^µ`` (the first of each half-subframe)
    carry the 16κ CP extension (TS 38.211 §5.3.1).
    """
    numerology = Numerology(mu)
    count = SYMBOLS_PER_SLOT * numerology.slots_per_subframe
    base = numerology.symbol_duration_useful_tc + numerology.cp_normal_tc
    extended = {0, 7 * 2 ** mu}
    return tuple(
        base + (numerology.cp_extension_tc if l in extended else 0)
        for l in range(count)
    )


@lru_cache(maxsize=None)
def symbol_starts_in_subframe(mu: int) -> tuple[int, ...]:
    """Tc offset of each symbol start within one subframe."""
    starts = []
    offset = 0
    for length in symbol_lengths_in_subframe(mu):
        starts.append(offset)
        offset += length
    assert offset == TC_PER_SUBFRAME, "CP accounting must sum to 1 ms"
    return tuple(starts)


@lru_cache(maxsize=None)
def slot_starts_in_subframe(mu: int) -> tuple[int, ...]:
    """Tc offset of each slot start within one subframe."""
    starts = symbol_starts_in_subframe(mu)
    return tuple(starts[slot * SYMBOLS_PER_SLOT]
                 for slot in range(Numerology(mu).slots_per_subframe))
