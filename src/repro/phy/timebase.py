"""3GPP NR timebase (TS 38.211 §4.1).

NR defines the basic time unit ``Tc = 1 / (Δf_max · N_f)`` with
``Δf_max = 480 kHz`` and ``N_f = 4096``; every duration in the frame
structure (symbols, cyclic prefixes, slots, subframes, frames) is an
*integer* multiple of Tc.  The whole library therefore keeps time as an
integer count of Tc, which makes slot arithmetic exact.

The LTE-compatibility constant ``κ = Ts / Tc = 64`` shows up in the
cyclic-prefix lengths.

Handy magnitudes::

    1 second      = 1 966 080 000 Tc
    1 millisecond =     1 966 080 Tc
    1 microsecond =         1 966.08 Tc  (not integral — convert w/ rounding)
"""

from __future__ import annotations

from fractions import Fraction

__all__ = [
    "TC_PER_SECOND",
    "KAPPA",
    "TC_PER_MS",
    "TC_PER_SUBFRAME",
    "TC_PER_FRAME",
    "tc_from_seconds",
    "tc_from_ms",
    "tc_from_us",
    "tc_from_ns",
    "seconds_from_tc",
    "ms_from_tc",
    "us_from_tc",
    "ns_from_tc",
    "us_from_ms",
    "tc_exact_ms",
]

#: Tc ticks per second: 480 000 * 4096.
TC_PER_SECOND: int = 480_000 * 4096

#: κ = Ts/Tc = 64 (TS 38.211 §4.1); Ts is the LTE sample period.
KAPPA: int = 64

#: Tc ticks in one millisecond (exactly 1 966 080).
TC_PER_MS: int = TC_PER_SECOND // 1000

#: Tc ticks in one subframe (1 ms).
TC_PER_SUBFRAME: int = TC_PER_MS

#: Tc ticks in one radio frame (10 ms).
TC_PER_FRAME: int = 10 * TC_PER_MS

_NS_PER_SECOND: int = 1_000_000_000
_US_PER_SECOND: int = 1_000_000


def _non_negative(value: float, unit: str) -> float:
    """Durations are magnitudes; a negative one is always a caller bug
    (usually an accidental end-before-start subtraction)."""
    if value < 0:
        raise ValueError(f"duration must be >= 0, got {value} {unit}")
    return value


def tc_from_seconds(seconds: float) -> int:
    """Convert seconds to the nearest integer Tc count."""
    return round(_non_negative(seconds, "s") * TC_PER_SECOND)


def tc_from_ms(ms: float) -> int:
    """Convert milliseconds to the nearest integer Tc count."""
    return round(_non_negative(ms, "ms") * TC_PER_MS)


def tc_from_us(us: float) -> int:
    """Convert microseconds to the nearest integer Tc count."""
    return round(_non_negative(us, "us") * TC_PER_SECOND
                 / _US_PER_SECOND)


def tc_from_ns(ns: float) -> int:
    """Convert nanoseconds to the nearest integer Tc count."""
    return round(_non_negative(ns, "ns") * TC_PER_SECOND
                 / _NS_PER_SECOND)


def seconds_from_tc(tc: int) -> float:
    """Convert a Tc count to seconds."""
    return _non_negative(tc, "Tc") / TC_PER_SECOND


def ms_from_tc(tc: int) -> float:
    """Convert a Tc count to milliseconds."""
    return _non_negative(tc, "Tc") / TC_PER_MS


def us_from_tc(tc: int) -> float:
    """Convert a Tc count to microseconds."""
    return _non_negative(tc, "Tc") * _US_PER_SECOND / TC_PER_SECOND


def ns_from_tc(tc: int) -> float:
    """Convert a Tc count to nanoseconds."""
    return _non_negative(tc, "Tc") * _NS_PER_SECOND / TC_PER_SECOND


def us_from_ms(ms: float) -> float:
    """Convert milliseconds to microseconds (exact decimal scaling).

    Exists so call sites convert units by name rather than with an
    inline ``* 1000`` the analyzer (and a reviewer) cannot attribute.
    """
    return _non_negative(ms, "ms") * 1000.0


def tc_exact_ms(tc: int) -> Fraction:
    """Exact millisecond value of a Tc count, as a Fraction.

    Useful in tests that assert slot durations like ``1/2**µ`` ms without
    floating-point tolerance games.
    """
    _non_negative(tc, "Tc")
    return Fraction(tc, TC_PER_MS)
