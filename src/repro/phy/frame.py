"""Frame structure: mapping absolute time ↔ (frame, subframe, slot, symbol).

Because the symbol pattern repeats exactly every subframe (1 ms), all
lookups reduce to integer division plus a bisect into the per-subframe
symbol-boundary table from :mod:`repro.phy.numerology`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.phy.numerology import (
    SYMBOLS_PER_SLOT,
    Numerology,
    symbol_lengths_in_subframe,
    symbol_starts_in_subframe,
)
from repro.phy.timebase import TC_PER_FRAME, TC_PER_SUBFRAME

__all__ = ["SlotAddress", "FrameStructure"]


@dataclass(frozen=True)
class SlotAddress:
    """Fully-resolved position of a tick inside the frame structure."""

    frame: int      #: radio frame number (10 ms each)
    subframe: int   #: subframe within the frame, 0..9
    slot: int       #: slot within the subframe, 0..2^µ-1
    symbol: int     #: OFDM symbol within the slot, 0..13

    def __str__(self) -> str:
        return (f"frame {self.frame} / subframe {self.subframe} / "
                f"slot {self.slot} / symbol {self.symbol}")


class FrameStructure:
    """Slot and symbol arithmetic for one numerology.

    All times are absolute integer Tc ticks; "slot index" means the
    absolute slot count since tick 0 (not the within-frame slot number).
    """

    def __init__(self, numerology: Numerology):
        self.numerology = numerology
        self._mu = numerology.mu
        self._symbol_starts = symbol_starts_in_subframe(self._mu)
        self._symbol_lengths = symbol_lengths_in_subframe(self._mu)
        self._slots_per_subframe = numerology.slots_per_subframe
        self._symbols_per_subframe = (SYMBOLS_PER_SLOT
                                      * self._slots_per_subframe)

    # ------------------------------------------------------------------
    # slots
    # ------------------------------------------------------------------
    def slot_index(self, time: int) -> int:
        """Absolute index of the slot containing ``time``."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        subframe, offset = divmod(time, TC_PER_SUBFRAME)
        symbol = bisect_right(self._symbol_starts, offset) - 1
        return (subframe * self._slots_per_subframe
                + symbol // SYMBOLS_PER_SLOT)

    def slot_start(self, slot_index: int) -> int:
        """Absolute Tc tick at which slot ``slot_index`` starts."""
        if slot_index < 0:
            raise ValueError(f"slot index must be non-negative")
        subframe, slot = divmod(slot_index, self._slots_per_subframe)
        return (subframe * TC_PER_SUBFRAME
                + self._symbol_starts[slot * SYMBOLS_PER_SLOT])

    def slot_end(self, slot_index: int) -> int:
        """Absolute Tc tick at which slot ``slot_index`` ends."""
        return self.slot_start(slot_index + 1)

    def slot_duration(self, slot_index: int) -> int:
        """Exact duration of a slot (varies ±16κ with CP extension)."""
        return self.slot_end(slot_index) - self.slot_start(slot_index)

    def next_slot_start(self, time: int) -> int:
        """First slot boundary strictly after ``time``."""
        return self.slot_start(self.slot_index(time) + 1)

    def slot_boundary_at_or_after(self, time: int) -> int:
        """First slot boundary at or after ``time``."""
        index = self.slot_index(time)
        start = self.slot_start(index)
        return start if start == time else self.slot_start(index + 1)

    # ------------------------------------------------------------------
    # symbols
    # ------------------------------------------------------------------
    def symbol_start(self, slot_index: int, symbol: int) -> int:
        """Absolute start tick of ``symbol`` (0..13) in ``slot_index``."""
        if not 0 <= symbol < SYMBOLS_PER_SLOT:
            raise ValueError(f"symbol must be in 0..13, got {symbol}")
        subframe, slot = divmod(slot_index, self._slots_per_subframe)
        position = slot * SYMBOLS_PER_SLOT + symbol
        return subframe * TC_PER_SUBFRAME + self._symbol_starts[position]

    def symbol_end(self, slot_index: int, symbol: int) -> int:
        """Absolute end tick of ``symbol`` in ``slot_index``."""
        subframe, slot = divmod(slot_index, self._slots_per_subframe)
        position = slot * SYMBOLS_PER_SLOT + symbol
        return (subframe * TC_PER_SUBFRAME + self._symbol_starts[position]
                + self._symbol_lengths[position])

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------
    def address(self, time: int) -> SlotAddress:
        """Resolve a tick to (frame, subframe, slot, symbol)."""
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        frame, in_frame = divmod(time, TC_PER_FRAME)
        subframe, offset = divmod(in_frame, TC_PER_SUBFRAME)
        position = bisect_right(self._symbol_starts, offset) - 1
        slot, symbol = divmod(position, SYMBOLS_PER_SLOT)
        return SlotAddress(frame, subframe, slot, symbol)

    def slot_in_frame(self, slot_index: int) -> tuple[int, int]:
        """Map an absolute slot index to (frame, slot-within-frame)."""
        slots_per_frame = self.numerology.slots_per_frame
        return divmod(slot_index, slots_per_frame)
