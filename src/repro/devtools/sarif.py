"""SARIF 2.1.0 output shared by all four ``urllc5g`` analysis verbs.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code scanners upload to review UIs; emitting
it lets lint, analyze, detsan, and distcheck feed GitHub code scanning
and any SARIF viewer.  The writer is a pure function from violations +
rule metadata to the document, so tests can assert on the exact shape.

Every verb emits the same driver metadata shape — ``urllc5g-<verb>``
tool name, the shared :data:`TOOL_VERSION`, and a sorted,
index-referenced rule table — so the four CI artifacts merge cleanly
in one viewer.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

from repro.devtools.lintkit.core import Severity, Violation

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "TOOL_VERSION",
           "sarif_document", "render_sarif"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: One version for every ``urllc5g-*`` driver; tracks the project
#: version in pyproject.toml so merged artifacts agree on provenance.
TOOL_VERSION = "1.0.0"

#: Severity -> SARIF ``level`` (the two vocabularies coincide for the
#: levels this project uses; "none" exists in SARIF but is never emitted).
_LEVELS = {"note": "note", "warning": "warning", "error": "error"}


def _level(severity: str) -> str:
    return _LEVELS.get(str(severity), "warning")


def sarif_document(violations: Sequence[Violation], *,
                   tool_name: str,
                   tool_version: str = TOOL_VERSION,
                   rules: Mapping[str, str] | None = None,
                   rule_severities: Mapping[str, str] | None = None,
                   information_uri: str | None = None) -> dict:
    """Build a SARIF 2.1.0 document as a plain dict.

    ``rules`` maps rule id -> one-line description; rule ids that appear
    in ``violations`` but not in ``rules`` are added with an empty
    description so every result can reference a rule object by index,
    as the spec recommends.  ``rule_severities`` sets each rule's
    ``defaultConfiguration.level`` (defaults to "error").
    """
    rules = dict(rules or {})
    rule_severities = dict(rule_severities or {})
    for violation in violations:
        rules.setdefault(violation.rule_id, "")
        rule_severities.setdefault(violation.rule_id, violation.severity)
    rule_ids = sorted(rules)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    rule_objects = [
        {
            "id": rule_id,
            "shortDescription": {"text": rules[rule_id] or rule_id},
            "defaultConfiguration": {
                "level": _level(rule_severities.get(rule_id,
                                                    Severity.ERROR)),
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": violation.rule_id,
            "ruleIndex": rule_index[violation.rule_id],
            "level": _level(violation.severity),
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            # SARIF columns are 1-based; violations are 0-based.
                            "startColumn": violation.col + 1,
                        },
                    },
                }
            ],
        }
        for violation in violations
    ]
    driver: dict = {
        "name": tool_name,
        "version": tool_version,
        "rules": rule_objects,
    }
    if information_uri:
        driver["informationUri"] = information_uri
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(violations: Iterable[Violation], *,
                 tool_name: str,
                 tool_version: str = TOOL_VERSION,
                 rules: Mapping[str, str] | None = None,
                 rule_severities: Mapping[str, str] | None = None,
                 information_uri: str | None = None) -> str:
    """The SARIF document serialised with stable key order."""
    document = sarif_document(
        list(violations), tool_name=tool_name, tool_version=tool_version,
        rules=rules, rule_severities=rule_severities,
        information_uri=information_uri)
    return json.dumps(document, indent=2, sort_keys=True)
