"""Whole-program time-unit inference over the unit lattice.

The loader records *symbolic* unit facts; this pass resolves them
project-wide.  Function return units and module-constant units are
computed by a fixpoint over the summaries (a declared suffix such as
``worst_case_uplink_us`` wins; otherwise the joined unit of the
function's ``return`` expressions), then every recorded check —
additive arithmetic, comparison, suffixed assignment, declared return,
call argument — is evaluated and the ones where two *concrete* units
disagree become violations.

``unitless`` (bare numeric literals, ratios of same-unit quantities)
and ``unknown`` never flag: the pass only reports when it can prove
both sides carry different physical units, which keeps it quiet on
idiomatic code and loud on genuine cross-module mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devtools.lintkit.core import Severity, Violation
from repro.devtools.analyze.loader import (
    ClassSummary,
    FunctionSummary,
    Project,
    UNITS,
    unit_of_name,
)

__all__ = ["UnitTables", "resolve_units", "unit_violations"]

_MAX_FIXPOINT_ROUNDS = 25


@dataclass
class UnitTables:
    """Resolved units, keyed by qualified name."""

    fn_ret: dict[str, str] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)


def join_units(units: list[str]) -> str:
    """Lattice join: unitless is absorbed, conflicts go to unknown."""
    concrete: set[str] = set()
    saw_unknown = False
    for unit in units:
        if unit == "unknown":
            saw_unknown = True
        elif unit != "unitless":
            concrete.add(unit)
    if saw_unknown:
        return "unknown"
    if not concrete:
        return "unitless" if units else "unknown"
    if len(concrete) == 1:
        return next(iter(concrete))
    return "unknown"


class _Resolver:
    """Evaluate symbolic unit expressions under the current tables."""

    def __init__(self, project: Project, tables: UnitTables):
        self.project = project
        self.tables = tables

    def eval(self, expr: dict | None, depth: int = 0) -> str:
        if expr is None or depth > 20:
            return "unknown"
        kind = expr["k"]
        if kind == "c":
            return expr["u"]
        if kind == "j":
            return join_units([self.eval(x, depth + 1)
                               for x in expr["x"]])
        if kind == "g":
            resolved = self.project._resolve(expr["n"])
            if resolved is None:
                return "unknown"
            return self.tables.constants.get(resolved, "unknown")
        if kind == "r":
            units = []
            for candidate in expr["f"]:
                summary = self.project.resolve_function(candidate)
                if summary is None:
                    units.append("unknown")
                else:
                    units.append(self.tables.fn_ret.get(
                        summary.qualname, "unknown"))
            return join_units(units) if units else "unknown"
        if kind == "m":
            a = self.eval(expr["a"], depth + 1)
            b = self.eval(expr["b"], depth + 1)
            if a == "unitless":
                return b
            if b == "unitless":
                return a
            return "unknown"
        if kind == "d":
            a = self.eval(expr["a"], depth + 1)
            b = self.eval(expr["b"], depth + 1)
            if a in UNITS and a == b:
                return "unitless"
            if b == "unitless":
                return a
            return "unknown"
        return "unknown"


def resolve_units(project: Project) -> UnitTables:
    """Fixpoint over module constants and function return units."""
    tables = UnitTables()
    resolver = _Resolver(project, tables)
    for qualname, summary in project.functions.items():
        tables.fn_ret[qualname] = summary.declared_unit or "unknown"
    for qualname in project.constant_seeds:
        tables.constants[qualname] = "unknown"
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for qualname, expr in project.constant_seeds.items():
            unit = resolver.eval(expr)
            if tables.constants.get(qualname) != unit:
                tables.constants[qualname] = unit
                changed = True
        for qualname, summary in project.functions.items():
            if summary.declared_unit is not None:
                continue
            unit = resolver.eval(summary.return_expr)
            if tables.fn_ret.get(qualname) != unit:
                tables.fn_ret[qualname] = unit
                changed = True
        if not changed:
            break
    return tables


def _callee_param_unit(project: Project, check: dict) -> str | None:
    """The declared unit of the parameter a call argument binds to."""
    if "param_unit" in check:
        return check["param_unit"]
    keyword = check.get("kw")
    for candidate in check.get("f", ()):
        target = project.resolve_callable(candidate)
        if target is None:
            continue
        if isinstance(target, FunctionSummary):
            if keyword is not None:
                unit = target.param_unit_by_name(keyword)
            else:
                unit = target.param_unit(check["i"])
            return unit
        if isinstance(target, ClassSummary):
            if keyword is not None:
                if keyword in target.fields:
                    return unit_of_name(keyword)
                return None
            index = check["i"]
            if 0 <= index < len(target.fields):
                return unit_of_name(target.fields[index])
            return None
    if keyword is not None:
        # Even with an unresolvable callee, a suffixed keyword states
        # the expected unit at the call site itself.
        return unit_of_name(keyword)
    return None


def unit_violations(project: Project, tables: UnitTables
                    ) -> list[Violation]:
    """Evaluate every recorded check under the resolved tables."""
    resolver = _Resolver(project, tables)
    violations: list[Violation] = []

    def flag(path: str, check: dict, message: str) -> None:
        violations.append(Violation(
            path=path, line=check["line"], col=check["col"],
            rule_id=check["rule"], severity=Severity.ERROR,
            message=message))

    def run_checks(path: str, checks: list[dict],
                   owner: str | None) -> None:
        for check in checks:
            rule = check["rule"]
            if rule == "cross-unit-arithmetic":
                a = resolver.eval(check["a"])
                b = resolver.eval(check["b"])
                if a in UNITS and b in UNITS and a != b:
                    flag(path, check,
                         f"{check.get('ctx', 'expression')} mixes _{a} "
                         f"and _{b}; convert via repro.phy.timebase "
                         f"(e.g. {a}_from_{b}(...)) before combining")
            elif rule == "cross-unit-comparison":
                units = sorted({
                    u for u in (resolver.eval(x) for x in check["xs"])
                    if u in UNITS})
                if len(units) > 1:
                    mixed = " and ".join(f"_{u}" for u in units)
                    flag(path, check,
                         f"compares values in different units ({mixed}); "
                         "convert to a common unit via repro.phy.timebase")
            elif rule == "cross-unit-assignment":
                value = resolver.eval(check["v"])
                declared = check["declared"]
                if value in UNITS and declared in UNITS \
                        and value != declared:
                    flag(path, check,
                         f"assigns a _{value} value to "
                         f"'{check.get('target')}' (declared _{declared}); "
                         f"convert with {declared}_from_{value}(...)")
            elif rule == "cross-unit-return":
                value = resolver.eval(check["v"])
                declared = check["declared"]
                if value in UNITS and declared in UNITS \
                        and value != declared:
                    flag(path, check,
                         f"'{check.get('fn', owner)}' is declared _"
                         f"{declared} but returns a _{value} value; "
                         f"convert with {declared}_from_{value}(...)")
            elif rule == "cross-unit-argument":
                value = resolver.eval(check["v"])
                if value not in UNITS:
                    continue
                param_unit = _callee_param_unit(project, check)
                if param_unit in UNITS and param_unit != value:
                    where = (f"keyword '{check['kw']}'"
                             if check.get("kw") is not None
                             else f"argument {check['i'] + 1}")
                    flag(path, check,
                         f"passes a _{value} value as {where} of "
                         f"{check.get('callee')}() which expects _"
                         f"{param_unit}; convert via repro.phy.timebase")

    for module in project.modules:
        run_checks(module.path, module.module_checks, None)
        for function in module.functions:
            run_checks(function.path, function.checks, function.name)
    return violations
