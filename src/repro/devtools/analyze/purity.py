"""Transitive purity: taint propagation through the call graph.

Per-file lint catches ``time.time()`` *in the function you are
reading*.  It cannot see that an innocuous helper three calls away
reaches the wall clock, seeds the process-global RNG, or schedules
simulator events from inside an unordered ``set`` iteration.  This
pass propagates three taints over the whole-program call graph:

- **wall-clock** — ``time.*`` / ``datetime.now`` family;
- **global-RNG** — stdlib ``random.*`` and legacy ``numpy.random.*``
  module-level state (``default_rng`` constructs an independent
  generator and is deliberately *not* a source, so
  :class:`repro.sim.rng.RngRegistry` stays clean);
- **schedules** — calls to ``.schedule(...)`` / ``.call_in(...)``.

Only *indirectly acquired* taint is reported: a function that calls
``time.time()`` itself is lint's business (``no-wall-clock``), so the
two tools never double-report one line.
"""

from __future__ import annotations

from repro.devtools.lintkit.core import Severity, Violation
from repro.devtools.analyze.loader import FunctionSummary, Project

__all__ = ["purity_violations"]

_ADVICE = {
    "transitive-wall-clock":
        "take timestamps from the simulator clock instead",
    "transitive-global-rng":
        "draw from a repro.sim.rng.RngRegistry stream instead",
}


def _resolved_edges(project: Project, summary: FunctionSummary
                    ) -> list[tuple[dict, list[str]]]:
    """Each call edge with its candidates resolved to known functions."""
    edges = []
    for edge in summary.call_edges:
        resolved = []
        for candidate in edge["f"]:
            target = project.resolve_function(candidate)
            if target is not None:
                resolved.append(target.qualname)
        if resolved:
            edges.append((edge, resolved))
    return edges


def _propagate(direct: dict[str, str],
               callees: dict[str, set[str]]) -> dict[str, tuple[str, str]]:
    """Fixpoint closure of taint over the call graph.

    Returns qualname -> ("direct", what) | ("via", callee_qualname) so
    reports can show the shortest discovered chain to the real source.
    """
    tainted: dict[str, tuple[str, str]] = {
        qualname: ("direct", what) for qualname, what in direct.items()}
    changed = True
    while changed:
        changed = False
        for caller, targets in callees.items():
            if caller in tainted:
                continue
            for target in sorted(targets):
                if target in tainted:
                    tainted[caller] = ("via", target)
                    changed = True
                    break
    return tainted


def _chain(tainted: dict[str, tuple[str, str]], start: str) -> str:
    """Human-readable call chain from ``start`` down to the source."""
    hops: list[str] = []
    current = start
    for _ in range(20):
        kind, what = tainted[current]
        hops.append(_short(current))
        if kind == "direct":
            hops.append(f"{what}()")
            break
        current = what
    return " -> ".join(hops)


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def purity_violations(project: Project) -> list[Violation]:
    """Report taint a function acquires only through its callees."""
    edges_by_fn = {
        summary.qualname: _resolved_edges(project, summary)
        for summary in project.functions.values()}
    callees = {
        qualname: {target for _, resolved in edges for target in resolved}
        for qualname, edges in edges_by_fn.items()}

    wall = _propagate(
        {q: s.wall_clock[0]["what"] for q, s in project.functions.items()
         if s.wall_clock}, callees)
    rng = _propagate(
        {q: s.global_rng[0]["what"] for q, s in project.functions.items()
         if s.global_rng}, callees)
    sched = _propagate(
        {q: "schedule" for q, s in project.functions.items()
         if s.schedules}, callees)

    violations: list[Violation] = []
    for qualname, summary in project.functions.items():
        for rule, tainted, directly in (
                ("transitive-wall-clock", wall, bool(summary.wall_clock)),
                ("transitive-global-rng", rng, bool(summary.global_rng))):
            if directly:
                continue  # the direct use is lint's finding, not ours
            seen_lines: set[int] = set()
            for edge, resolved in edges_by_fn[qualname]:
                hit = next((t for t in resolved if t in tainted), None)
                if hit is None or edge["line"] in seen_lines:
                    continue
                seen_lines.add(edge["line"])
                what = _chain(tainted, hit)
                violations.append(Violation(
                    path=summary.path, line=edge["line"],
                    col=edge["col"], rule_id=rule,
                    severity=Severity.ERROR,
                    message=(f"'{_short(qualname)}' calls "
                             f"'{edge['name']}' which transitively "
                             f"reaches {what}; {_ADVICE[rule]}")))
        for loop in summary.unordered_loops:
            if loop["direct"]:
                continue  # literal schedule-in-loop is lint's finding
            hit = None
            for candidate in loop["calls"]:
                target = project.resolve_function(candidate)
                if target is not None and target.qualname in sched:
                    hit = target.qualname
                    break
            if hit is None:
                continue
            violations.append(Violation(
                path=summary.path, line=loop["line"], col=loop["col"],
                rule_id="transitive-unordered-schedule",
                severity=Severity.ERROR,
                message=(f"'{_short(qualname)}' iterates over "
                         f"{loop['reason']} and calls "
                         f"'{_short(hit)}' which transitively schedules "
                         f"simulator events ({_chain(sched, hit)}); "
                         "iterate in sorted() order so event order "
                         "is deterministic")))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations
