"""Reviewed baseline of accepted analyzer findings.

New analyzers on old code always surface a mix of true positives (fix
them) and accepted debt (baseline it).  The baseline is a JSON file of
finding fingerprints — ``rule | src-relative path | message`` — checked
in and reviewed like code.  ``urllc5g analyze --baseline FILE`` fails
only on findings *not* in the baseline, so CI gates on regressions
while the backlog is burned down deliberately.

Fingerprints deliberately exclude line numbers: inserting a line above
an accepted finding must not resurrect it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lintkit.core import Violation

__all__ = ["Baseline", "fingerprint", "load_baseline", "write_baseline"]

BASELINE_SCHEMA_VERSION = 1


def _stable_path(path: str) -> str:
    """Path from its last ``src``/``tests`` segment, so fingerprints
    survive being computed from different working directories."""
    parts = Path(path).as_posix().split("/")
    for anchor in ("src", "tests"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return parts[-1]


def fingerprint(violation: Violation) -> str:
    raw = (f"{violation.rule_id}|{_stable_path(violation.path)}|"
           f"{violation.message}")
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """The set of accepted finding fingerprints."""

    fingerprints: set[str] = field(default_factory=set)

    def filter(self, violations: Iterable[Violation]
               ) -> tuple[list[Violation], int]:
        """Split into (new findings, count suppressed by baseline)."""
        kept: list[Violation] = []
        suppressed = 0
        for violation in violations:
            if fingerprint(violation) in self.fingerprints:
                suppressed += 1
            else:
                kept.append(violation)
        return kept, suppressed


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError:
        return Baseline()
    if not isinstance(payload, dict):
        raise ValueError(f"malformed baseline file: {path}")
    entries = payload.get("findings", [])
    return Baseline(fingerprints={
        entry["fingerprint"] for entry in entries
        if isinstance(entry, dict) and "fingerprint" in entry})


def write_baseline(path: str | Path,
                   violations: Sequence[Violation]) -> None:
    """Write all current findings as the new accepted baseline.

    Entries carry the human-readable finding next to its fingerprint so
    baseline diffs are reviewable; only the fingerprint is matched.
    """
    findings = sorted(
        ({"fingerprint": fingerprint(violation),
          "rule": violation.rule_id,
          "path": _stable_path(violation.path),
          "message": violation.message}
         for violation in violations),
        key=lambda entry: (entry["rule"], entry["path"],
                           entry["fingerprint"]))
    unique = [entry for i, entry in enumerate(findings)
              if not i or findings[i - 1]["fingerprint"]
              != entry["fingerprint"]]
    payload = {"schema_version": BASELINE_SCHEMA_VERSION,
               "findings": unique}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
