"""Analysis orchestration: load -> resolve -> report.

:func:`analyze_paths` is the one entry point the CLI and tests use:
it loads the project model (through the incremental cache when
enabled), runs the unit-inference and purity passes, applies
``# analyze:`` pragmas, the config ``ignore`` list and the reviewed
baseline, and returns an :class:`AnalysisReport` whose ``exit_code``
is the CI gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.lintkit.core import (
    SYNTAX_ERROR_RULE_ID,
    Severity,
    Violation,
)
from repro.devtools.analyze.baseline import Baseline, load_baseline
from repro.devtools.analyze.cache import AnalysisCache
from repro.devtools.analyze.config import AnalyzeConfig
from repro.devtools.analyze.loader import Project, load_project
from repro.devtools.analyze.purity import purity_violations
from repro.devtools.analyze.units import resolve_units, unit_violations

__all__ = ["ANALYZE_RULES", "AnalysisReport", "analyze_paths",
           "render_analysis_text", "render_analysis_json",
           "render_analysis_sarif"]

#: Rule id -> one-line description (feeds the SARIF rules array).
ANALYZE_RULES = {
    "cross-unit-arithmetic":
        "additive arithmetic mixes two different time units",
    "cross-unit-comparison":
        "comparison between values carrying different time units",
    "cross-unit-assignment":
        "value's inferred unit contradicts the target name's suffix",
    "cross-unit-return":
        "returned value's unit contradicts the function's declared unit",
    "cross-unit-argument":
        "argument's unit contradicts the callee parameter's declared unit",
    "transitive-wall-clock":
        "callee transitively reads the wall clock",
    "transitive-global-rng":
        "callee transitively draws from process-global RNG state",
    "transitive-unordered-schedule":
        "unordered iteration transitively schedules simulator events",
    SYNTAX_ERROR_RULE_ID:
        "file could not be parsed",
}


@dataclass
class AnalysisReport:
    """The outcome of one whole-program analysis run."""

    violations: list[Violation]
    files_checked: int
    parsed: int = 0
    from_cache: int = 0
    suppressed: int = 0
    baselined: int = 0
    project: Project | None = field(default=None, repr=False)

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations
                if v.severity >= Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _syntax_violations(project: Project) -> list[Violation]:
    violations = []
    for module in project.modules:
        error = module.parse_error
        if error is None:
            continue
        violations.append(Violation(
            path=module.path, line=error["line"], col=error["col"],
            rule_id=SYNTAX_ERROR_RULE_ID, severity=Severity.ERROR,
            message=f"could not parse file: {error['message']}"))
    return violations


def _apply_pragmas(project: Project, violations: list[Violation]
                   ) -> tuple[list[Violation], int]:
    by_path = {module.path: module for module in project.modules}
    kept: list[Violation] = []
    suppressed = 0
    for violation in violations:
        module = by_path.get(violation.path)
        if module is not None:
            file_off = set(module.file_pragmas)
            line_off = set(module.line_pragmas.get(violation.line, ()))
            off = file_off | line_off
            if violation.rule_id in off or "all" in off:
                suppressed += 1
                continue
        kept.append(violation)
    return kept, suppressed


def analyze_paths(paths: Iterable[str | Path],
                  config: AnalyzeConfig | None = None,
                  *,
                  baseline: Baseline | None = None,
                  cache_path: str | Path | None = None,
                  use_cache: bool = True) -> AnalysisReport:
    """Run the whole-program analysis and aggregate a report.

    ``baseline`` overrides the config's baseline file; ``cache_path``
    overrides the config's cache location; ``use_cache=False`` disables
    the incremental cache entirely (every module is re-parsed).
    """
    config = config or AnalyzeConfig()
    cache: AnalysisCache | None = None
    if use_cache:
        location = cache_path if cache_path is not None else config.cache
        if location is not None:
            cache = AnalysisCache(location)
    project = load_project(paths, exclude=config.is_excluded, cache=cache)
    if cache is not None:
        cache.save()

    tables = resolve_units(project)
    violations = (_syntax_violations(project)
                  + unit_violations(project, tables)
                  + purity_violations(project))
    if config.ignore:
        ignored = set(config.ignore)
        violations = [v for v in violations if v.rule_id not in ignored]
    violations, suppressed = _apply_pragmas(project, violations)

    if baseline is None and config.baseline is not None:
        baseline = load_baseline(config.baseline)
    baselined = 0
    if baseline is not None:
        violations, baselined = baseline.filter(violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return AnalysisReport(
        violations=violations,
        files_checked=project.files_checked,
        parsed=project.parsed,
        from_cache=project.from_cache,
        suppressed=suppressed,
        baselined=baselined,
        project=project,
    )


def render_analysis_text(report: AnalysisReport) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [violation.render() for violation in report.violations]
    summary = (f"{report.files_checked} file(s) analyzed "
               f"({report.parsed} parsed, {report.from_cache} from "
               f"cache), {len(report.violations)} finding(s)")
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def render_analysis_json(report: AnalysisReport) -> str:
    """Machine-readable report for tooling."""
    payload = {
        "files_checked": report.files_checked,
        "parsed": report.parsed,
        "from_cache": report.from_cache,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "exit_code": report.exit_code,
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule_id,
                "severity": str(violation.severity),
                "message": violation.message,
            }
            for violation in report.violations
        ],
    }
    return json.dumps(payload, indent=2)


def render_analysis_sarif(report: AnalysisReport) -> str:
    """SARIF 2.1.0 document via the shared writer."""
    from repro.devtools.sarif import render_sarif

    return render_sarif(report.violations, tool_name="urllc5g-analyze",
                        rules=ANALYZE_RULES,
                        information_uri="docs/ANALYSIS.md")
