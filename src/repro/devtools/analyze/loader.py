"""Project loader: parse once, summarise every module.

The loader walks the analysis roots with the shared
:func:`repro.devtools.walker.iter_python_files`, parses each module
once (or restores it from the incremental cache without parsing — see
:data:`PARSE_HOOKS`), and extracts a :class:`ModuleSummary`: the symbol
table (functions, methods, classes, module constants), the call edges
resolvable from imports/``self``, per-function purity effects, and the
*symbolic* unit facts the global passes resolve later.

Symbolic unit expressions are plain JSON-able dicts so summaries can be
cached to disk and whole-program resolution never needs the AST again:

- ``{"k": "c", "u": "us"}`` — a known lattice element
  (``tc | ns | us | ms | s | unitless | unknown``);
- ``{"k": "r", "f": [qualname, ...]}`` — the return unit of one of the
  candidate callees;
- ``{"k": "g", "n": qualname}`` — the unit of a module-level symbol;
- ``{"k": "j", "x": [expr, ...]}`` — the lattice join of sub-expressions.

The intraprocedural pass is flow-sensitive: an abstract environment of
name -> unit expression is threaded through each function body in
statement order, branches are merged by joining, and every additive
binop, comparison, suffixed assignment, return and call argument
records a *check* for :mod:`repro.devtools.analyze.units` to evaluate
once return units are known project-wide.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.devtools.walker import iter_python_files

__all__ = [
    "PARSE_HOOKS",
    "UNITS",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "Project",
    "load_project",
    "module_qualname",
    "unit_of_name",
    "conversion_units",
]

#: Hooks called with the file path on every real ``ast.parse``.  Tests
#: register a counter here to assert the incremental cache performs
#: zero re-parses on an unchanged tree.
PARSE_HOOKS: list[Callable[[str], None]] = []

#: Concrete lattice units (besides ``unitless`` and ``unknown``).
UNITS = ("tc", "ns", "us", "ms", "s")

_SUFFIX_UNITS = {"tc": "tc", "ns": "ns", "us": "us", "ms": "ms"}
_BARE_NAME_UNITS = {"tc": "tc", "ns": "ns", "us": "us", "ms": "ms",
                    "seconds": "s"}
_LONG_UNIT_NAMES = {"seconds": "s", "second": "s", **{u: u for u in UNITS}}

#: Module constants whose unit cannot be derived syntactically: the
#: timebase scale factors are durations *expressed in Tc*.
CONSTANT_UNIT_SEEDS = {
    "repro.phy.timebase.TC_PER_SECOND": "tc",
    "repro.phy.timebase.TC_PER_MS": "tc",
    "repro.phy.timebase.TC_PER_SUBFRAME": "tc",
    "repro.phy.timebase.TC_PER_FRAME": "tc",
    "repro.phy.timebase.KAPPA": "unitless",
}

_UNIT_ANNOTATION_RE = re.compile(r"#\s*unit:\s*([A-Za-z]+)")
_PRAGMA_RE = re.compile(r"#\s*analyze:\s*disable=([A-Za-z0-9_,\- ]+)")
_PRAGMA_FILE_RE = re.compile(
    r"#\s*analyze:\s*disable-file=([A-Za-z0-9_,\- ]+)")

_WALL_CLOCK_TIME_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
})
_WALL_CLOCK_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_GLOBAL_NP_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "normal", "uniform", "exponential", "lognormal", "poisson",
    "binomial", "choice", "shuffle", "permutation", "standard_normal",
})
_SCHEDULE_METHODS = frozenset({"schedule", "call_in"})
#: Method names that consume entropy when called on a Generator or a
#: delay sampler.  Used for the ordering dimension of the taint
#: lattice (draws under unordered iteration) — receiver-agnostic by
#: design, so ``self._delays[key].sample(rng)`` still counts.
_GENERATOR_DRAW_METHODS = frozenset({
    "random", "normal", "uniform", "lognormal", "exponential",
    "poisson", "integers", "choice", "standard_normal", "shuffle",
    "permutation", "sample", "sample_batch", "next",
})
#: Classes that take exclusive ownership of the Generator passed to
#: their constructor (resolved through import aliases).
_BUFFER_CLASSES = frozenset({"BufferedSampler", "UniformBuffer",
                             "LogNormalBlockServer"})
#: The sanctioned way to draw through a claimed generator: passing it
#: back to the buffered sampler (plus the ``owns`` identity probe).
_BUFFER_DRAW_METHODS = frozenset({"sample", "sample_batch", "next", "owns"})
_DETSAN_SHARED_RE = re.compile(r"#\s*detsan:\s*shared\b")
_PASSTHROUGH_CALLS = frozenset({"float", "int", "round", "abs"})
_JOIN_CALLS = frozenset({"min", "max"})
_BUILTIN_NAMES = frozenset(dir(__import__("builtins")))

# -- distributability extraction (consumed by repro.devtools.distcheck) --
#: Calls that read (or mutate) the process environment.
_ENV_READ_CALLS = frozenset({
    "os.environ.get", "os.getenv", "os.environ.setdefault",
    "os.environ.pop", "os.putenv",
})
#: Calls that observe — or move — the host working directory.
_CWD_CALLS = frozenset({
    "os.getcwd", "os.getcwdb", "os.chdir", "pathlib.Path.cwd",
    "Path.cwd",
})
#: Calls that read host identity (name, pid, user, platform).
_HOST_ID_CALLS = frozenset({
    "socket.gethostname", "socket.getfqdn", "platform.node",
    "platform.system", "platform.machine", "platform.release",
    "platform.platform", "platform.python_version", "os.getpid",
    "os.getppid", "os.uname", "os.getlogin", "getpass.getuser",
})
#: Calls that control the worker process itself.
_PROCESS_CALLS = frozenset({
    "os._exit", "os.abort", "os.kill", "os.fork", "os.execv",
})
#: Module-level filesystem mutators (methods are matched separately).
_FS_WRITE_CALLS = frozenset({
    "os.remove", "os.unlink", "os.rename", "os.replace",
    "os.makedirs", "os.mkdir", "os.rmdir", "os.symlink", "os.link",
    "os.truncate", "os.chmod", "os.chown",
})
#: Path-flavoured mutator methods, matched receiver-agnostically (the
#: receiver of ``.write_text`` etc. is a path whatever its static type).
_FS_WRITE_METHODS = frozenset({
    "write_text", "write_bytes", "mkdir", "touch", "unlink", "rmdir",
    "symlink_to", "hardlink_to",
})
#: Methods that ship a callable across a process-pool boundary.
_POOL_SUBMIT_METHODS = frozenset({
    "submit", "map", "apply_async", "starmap", "imap",
    "imap_unordered",
})
#: Methods that mutate their receiver in place (checked only against
#: module-level mutable bindings, so local containers never match).
_MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "setdefault", "insert",
    "remove", "discard", "pop", "popitem", "clear",
})
#: Constructors whose module-level result is mutable shared state.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict",
    "Counter",
})


def unit_of_name(name: str) -> str | None:
    """Lattice unit carried by a name's suffix (case-insensitive)."""
    lowered = name.lower()
    stem, _, tail = lowered.rpartition("_")
    if stem and tail in _SUFFIX_UNITS:
        return _SUFFIX_UNITS[tail]
    return _BARE_NAME_UNITS.get(lowered)


def conversion_units(name: str) -> tuple[str, str] | None:
    """``(target, source)`` units of a ``<t>_from_<s>`` converter name."""
    target, sep, source = name.partition("_from_")
    if not sep:
        return None
    target_unit = _LONG_UNIT_NAMES.get(target)
    source_unit = _LONG_UNIT_NAMES.get(source)
    if target_unit and source_unit:
        return target_unit, source_unit
    return None


# ----------------------------------------------------------------------
# symbolic unit expressions
# ----------------------------------------------------------------------
def u_const(unit: str) -> dict:
    return {"k": "c", "u": unit}


U_UNKNOWN = u_const("unknown")
U_UNITLESS = u_const("unitless")


def u_join(exprs: list[dict]) -> dict:
    flat: list[dict] = []
    for expr in exprs:
        if expr["k"] == "j":
            flat.extend(expr["x"])
        else:
            flat.append(expr)
    unique = [expr for i, expr in enumerate(flat)
              if expr not in flat[:i]]
    if not unique:
        return U_UNKNOWN
    if len(unique) == 1:
        return unique[0]
    return {"k": "j", "x": unique}


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
@dataclass
class FunctionSummary:
    """Everything the global passes need to know about one function."""

    qualname: str
    name: str
    path: str
    line: int
    params: list[str] = field(default_factory=list)
    declared_unit: str | None = None
    return_expr: dict | None = None
    checks: list[dict] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)
    call_edges: list[dict] = field(default_factory=list)
    wall_clock: list[dict] = field(default_factory=list)
    global_rng: list[dict] = field(default_factory=list)
    schedules: bool = False
    unordered_loops: list[dict] = field(default_factory=list)
    draws: list[dict] = field(default_factory=list)
    #: Decorators, resolved: ``{"name": qualname, "arg": str | None}``.
    decorators: list[dict] = field(default_factory=list)
    #: Host-state observations: env/cwd/file/host-id/locale/process.
    host_state: list[dict] = field(default_factory=list)
    #: Writes to module-level mutable bindings (incl. ``global`` rebinds).
    global_writes: list[dict] = field(default_factory=list)
    #: Filesystem mutations outside any sanctioned-writer decision.
    fs_writes: list[dict] = field(default_factory=list)
    #: Unpicklable values handed to pool submit/map call sites.
    boundary: list[dict] = field(default_factory=list)
    #: Canonical-form hazards (unsorted json.dumps, hash(), id()).
    digest_hazards: list[dict] = field(default_factory=list)

    def param_unit(self, index: int) -> str | None:
        if 0 <= index < len(self.params):
            return unit_of_name(self.params[index])
        return None

    def param_unit_by_name(self, name: str) -> str | None:
        if name in self.params:
            return unit_of_name(name)
        return None


@dataclass
class ClassSummary:
    qualname: str
    name: str
    path: str
    line: int
    fields: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)


@dataclass
class ModuleSummary:
    path: str
    qualname: str
    content_hash: str = ""
    aliases: dict[str, str] = field(default_factory=dict)
    constants: dict[str, dict] = field(default_factory=dict)
    module_checks: list[dict] = field(default_factory=list)
    functions: list[FunctionSummary] = field(default_factory=list)
    classes: list[ClassSummary] = field(default_factory=list)
    line_pragmas: dict[int, list[str]] = field(default_factory=dict)
    file_pragmas: list[str] = field(default_factory=list)
    parse_error: dict | None = None
    #: RngRegistry stream acquisitions (see :class:`_StreamWalker`).
    streams: list[dict] = field(default_factory=list)
    #: BufferedSampler/UniformBuffer constructions and their rng args.
    rng_buffers: list[dict] = field(default_factory=list)
    #: Uses of a buffer-claimed generator outside the buffered idiom.
    rng_escapes: list[dict] = field(default_factory=list)
    #: Module-level ``NAME = "literal"`` bindings (env-var name lookup).
    str_constants: dict[str, str] = field(default_factory=dict)
    #: Module-level bindings to mutable containers (dict/list/set/...).
    mutable_globals: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        from dataclasses import asdict
        payload = asdict(self)
        payload["line_pragmas"] = {
            str(line): rules for line, rules in self.line_pragmas.items()}
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ModuleSummary":
        functions = [FunctionSummary(**f) for f in payload["functions"]]
        classes = [ClassSummary(**c) for c in payload["classes"]]
        return cls(
            path=payload["path"],
            qualname=payload["qualname"],
            content_hash=payload["content_hash"],
            aliases=dict(payload["aliases"]),
            constants=dict(payload["constants"]),
            module_checks=list(payload["module_checks"]),
            functions=functions,
            classes=classes,
            line_pragmas={int(line): rules for line, rules
                          in payload["line_pragmas"].items()},
            file_pragmas=list(payload["file_pragmas"]),
            parse_error=payload.get("parse_error"),
            streams=list(payload.get("streams", [])),
            rng_buffers=list(payload.get("rng_buffers", [])),
            rng_escapes=list(payload.get("rng_escapes", [])),
            str_constants=dict(payload.get("str_constants", {})),
            mutable_globals=list(payload.get("mutable_globals", [])),
        )


@dataclass
class Project:
    """All module summaries plus the cross-module symbol indexes."""

    modules: list[ModuleSummary]
    files_checked: int = 0
    parsed: int = 0
    from_cache: int = 0

    def __post_init__(self) -> None:
        self.by_qualname: dict[str, ModuleSummary] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.classes: dict[str, ClassSummary] = {}
        self.constant_seeds: dict[str, dict] = {}
        for module in self.modules:
            self.by_qualname[module.qualname] = module
            for function in module.functions:
                self.functions[function.qualname] = function
            for klass in module.classes:
                self.classes[klass.qualname] = klass
            for name, expr in module.constants.items():
                self.constant_seeds[f"{module.qualname}.{name}"] = expr
        for qualname, unit in CONSTANT_UNIT_SEEDS.items():
            self.constant_seeds[qualname] = u_const(unit)

    # ------------------------------------------------------------------
    # symbol resolution across re-export chains
    # ------------------------------------------------------------------
    def resolve_function(self, qualname: str) -> FunctionSummary | None:
        resolved = self._resolve(qualname)
        if resolved is None:
            return None
        summary = self.functions.get(resolved)
        if summary is not None:
            return summary
        # A class used as a callable resolves to its __init__.
        klass = self.classes.get(resolved)
        if klass is not None:
            return self.functions.get(f"{resolved}.__init__")
        return None

    def resolve_callable(self, qualname: str
                         ) -> FunctionSummary | ClassSummary | None:
        resolved = self._resolve(qualname)
        if resolved is None:
            return None
        return (self.functions.get(resolved)
                or self.classes.get(resolved))

    def resolve_constant(self, qualname: str) -> dict | None:
        resolved = self._resolve(qualname)
        if resolved is None:
            return None
        return self.constant_seeds.get(resolved)

    def _resolve(self, qualname: str, depth: int = 0) -> str | None:
        """Follow import/re-export links until a definition is found."""
        if depth > 10 or not qualname:
            return None
        if (qualname in self.functions or qualname in self.classes
                or qualname in self.constant_seeds):
            return qualname
        head, _, tail = qualname.rpartition(".")
        if not head:
            return qualname
        module = self.by_qualname.get(head)
        if module is not None and tail in module.aliases:
            return self._resolve(module.aliases[tail], depth + 1)
        # Method on a re-exported class: resolve the class, re-append.
        method_head, _, method = head.rpartition(".")
        if method_head:
            owner = self.by_qualname.get(method_head)
            if owner is not None and method in owner.aliases:
                resolved = self._resolve(owner.aliases[method], depth + 1)
                if resolved is not None:
                    return self._resolve(f"{resolved}.{tail}", depth + 1)
        return qualname


# ----------------------------------------------------------------------
# module name derivation
# ----------------------------------------------------------------------
def module_qualname(path: Path) -> str:
    """Dotted module name, derived from the ``__init__.py`` chain."""
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    current = path.resolve().parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
class _ModuleExtractor:
    """One parsed module -> a :class:`ModuleSummary`."""

    def __init__(self, path: str, qualname: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.qualname = qualname
        self.lines = source.splitlines()
        self.tree = tree
        self.summary = ModuleSummary(path=path, qualname=qualname)
        self.is_package = Path(path).name == "__init__.py"

    def run(self) -> ModuleSummary:
        self._collect_pragmas()
        self._collect_imports()
        module_fn = _FunctionExtractor(
            self, qualname=f"{self.qualname}.<module>", name="<module>",
            params=[], lineno=1, declared_unit=None, class_name=None,
            module_level=True)
        module_fn.exec_block(
            [stmt for stmt in self.tree.body
             if not isinstance(stmt, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef))])
        self.summary.module_checks = module_fn.checks
        for name, expr in module_fn.env.items():
            self.summary.constants[name] = expr
        self._collect_module_bindings()
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(stmt, parent=self.qualname,
                                       class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt)
        _StreamWalker(self).run()
        return self.summary

    # -- comments ------------------------------------------------------
    def _collect_pragmas(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                rules = [r.strip() for r in match.group(1).split(",")]
                self.summary.line_pragmas.setdefault(
                    lineno, []).extend(rules)
            match = _PRAGMA_FILE_RE.search(line)
            if match:
                self.summary.file_pragmas.extend(
                    r.strip() for r in match.group(1).split(","))

    def _collect_module_bindings(self) -> None:
        """Index module-level string constants and mutable containers.

        Both feed the distributability pass: string constants resolve
        indirect env-var names (``os.environ.get(ENV_FLAG)``), mutable
        bindings anchor the dist-mutable-global rule.  Only top-level
        statements count — anything created inside a function is local.
        """
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if isinstance(value, ast.Constant) and isinstance(
                    value.value, str):
                for name in names:
                    self.summary.str_constants[name] = value.value
            elif _is_mutable_literal(value):
                self.summary.mutable_globals.extend(names)

    def unit_annotation(self, lineno: int) -> str | None:
        """A ``# unit: tc`` annotation on the given source line."""
        if 1 <= lineno <= len(self.lines):
            match = _UNIT_ANNOTATION_RE.search(self.lines[lineno - 1])
            if match:
                unit = match.group(1).lower()
                return _LONG_UNIT_NAMES.get(unit, unit)
        return None

    # -- imports -------------------------------------------------------
    def _collect_imports(self) -> None:
        package_parts = self.qualname.split(".")
        if not self.is_package:
            package_parts = package_parts[:-1]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    self.summary.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base_parts = list(package_parts)
                if node.level:
                    cut = node.level - 1
                    base_parts = (base_parts[:-cut] if cut
                                  else base_parts)
                base = ".".join(base_parts)
                module = node.module or ""
                prefix = ".".join(p for p in (base if node.level else "",
                                              module) if p) \
                    if node.level else module
                if not prefix:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.summary.aliases[local] = f"{prefix}.{alias.name}"

    def resolve_dotted(self, dotted: str) -> str:
        """Rewrite a local dotted name through the import table."""
        head, _, tail = dotted.partition(".")
        target = self.summary.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{tail}" if tail else target

    # -- definitions ---------------------------------------------------
    def _extract_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                          parent: str, class_name: str | None) -> None:
        qualname = f"{parent}.{node.name}"
        args = node.args
        params = [a.arg for a in (list(args.posonlyargs) + list(args.args))]
        if class_name and params and params[0] in ("self", "cls"):
            params = params[1:]
        conversion = conversion_units(node.name)
        declared = (conversion[0] if conversion
                    else self.unit_annotation(node.lineno)
                    or unit_of_name(node.name))
        extractor = _FunctionExtractor(
            self, qualname=qualname, name=node.name, params=params,
            lineno=node.lineno, declared_unit=declared,
            class_name=class_name, module_level=False,
            is_converter=conversion is not None)
        extractor.decorators = self._decorator_records(node)
        extractor.exec_block(node.body)
        self.summary.functions.append(extractor.finish(self.path))

    def _decorator_records(self, node: ast.FunctionDef
                           | ast.AsyncFunctionDef) -> list[dict]:
        """Resolve each decorator to a qualname plus its first str arg.

        Bare same-module names qualify against this module, so
        ``@scenario("x")`` resolves identically whether the decorator
        is imported or defined alongside its uses.
        """
        records: list[dict] = []
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            dotted = _dotted(target)
            if dotted is None:
                continue
            head = dotted.split(".")[0]
            if head in self.summary.aliases:
                name = self.resolve_dotted(dotted)
            elif "." not in dotted and dotted not in _BUILTIN_NAMES:
                name = f"{self.qualname}.{dotted}"
            else:
                name = dotted
            arg = None
            if isinstance(dec, ast.Call) and dec.args and isinstance(
                    dec.args[0], ast.Constant) and isinstance(
                    dec.args[0].value, str):
                arg = dec.args[0].value
            records.append({"name": name, "arg": arg})
        return records

    def _extract_class(self, node: ast.ClassDef) -> None:
        qualname = f"{self.qualname}.{node.name}"
        klass = ClassSummary(qualname=qualname, name=node.name,
                             path=self.path, line=node.lineno)
        init_params: list[str] | None = None
        class_fn = _FunctionExtractor(
            self, qualname=f"{qualname}.<class>", name="<class>",
            params=[], lineno=node.lineno, declared_unit=None,
            class_name=node.name, module_level=False)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                klass.methods.append(stmt.name)
                self._extract_function(stmt, parent=qualname,
                                       class_name=node.name)
                if stmt.name == "__init__":
                    args = stmt.args
                    init_params = [
                        a.arg for a in (list(args.posonlyargs)
                                        + list(args.args))][1:]
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                klass.fields.append(stmt.target.id)
                class_fn.exec_stmt(stmt)
            elif isinstance(stmt, ast.Assign):
                class_fn.exec_stmt(stmt)
        # Dataclass-style classes take their fields as __init__ params.
        klass.fields = init_params if init_params is not None \
            else klass.fields
        self.summary.module_checks.extend(class_fn.checks)
        self.summary.classes.append(klass)


class _FunctionExtractor:
    """Flow-sensitive abstract interpretation of one function body."""

    def __init__(self, module: _ModuleExtractor, *, qualname: str,
                 name: str, params: list[str], lineno: int,
                 declared_unit: str | None, class_name: str | None,
                 module_level: bool, is_converter: bool = False):
        self.module = module
        self.qualname = qualname
        self.name = name
        self.params = params
        self.declared_unit = declared_unit
        # A <target>_from_<source> converter changes units by contract;
        # its body would otherwise always fail its own return check.
        self.is_converter = is_converter
        self.class_name = class_name
        self.module_level = module_level
        self.env: dict[str, dict] = {
            param: u_const(unit_of_name(param) or "unknown")
            for param in params
        }
        self.local_defs: dict[str, str] = {}
        self.checks: list[dict] = []
        self.calls: list[str] = []
        self.call_edges: list[dict] = []
        self.return_exprs: list[dict] = []
        self.wall_clock: list[dict] = []
        self.global_rng: list[dict] = []
        self.schedules = False
        self.unordered_loops: list[dict] = []
        self.draws: list[dict] = []
        self.decorators: list[dict] = []
        self.host_state: list[dict] = []
        self.global_writes: list[dict] = []
        self.fs_writes: list[dict] = []
        self.boundary: list[dict] = []
        self.digest_hazards: list[dict] = []
        self._lambda_names: set[str] = set()
        self.local_classes: set[str] = set()
        self._loop_stack: list[dict] = []
        self._lineno = lineno

    def finish(self, path: str) -> FunctionSummary:
        return FunctionSummary(
            qualname=self.qualname,
            name=self.name,
            path=path,
            line=self._lineno,
            params=self.params,
            declared_unit=self.declared_unit,
            return_expr=(u_join(self.return_exprs)
                         if self.return_exprs else None),
            checks=self.checks,
            calls=sorted(set(self.calls)),
            call_edges=self.call_edges,
            wall_clock=self.wall_clock,
            global_rng=self.global_rng,
            schedules=self.schedules,
            unordered_loops=self.unordered_loops,
            draws=self.draws,
            decorators=self.decorators,
            host_state=self.host_state,
            global_writes=self.global_writes,
            fs_writes=self.fs_writes,
            boundary=self.boundary,
            digest_hazards=self.digest_hazards,
        )

    # -- statements ----------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested functions get their own summary; bare-name calls to
            # them resolve through local_defs, so taint still flows.
            self.local_defs[stmt.name] = f"{self.qualname}.{stmt.name}"
            self.module._extract_function(stmt, parent=self.qualname,
                                          class_name=self.class_name)
        elif isinstance(stmt, ast.ClassDef):
            self.local_classes.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt)
                if isinstance(target, ast.Subscript):
                    self._module_mutation(target.value, stmt,
                                          "item assignment")
            if isinstance(stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._lambda_names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            value = (self.eval_expr(stmt.value)
                     if stmt.value is not None else None)
            if value is not None:
                self._assign(stmt.target, value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval_expr(stmt.value)
            if isinstance(stmt.target, ast.Subscript):
                self._module_mutation(stmt.target.value, stmt,
                                      "augmented item assignment")
            target_unit = self._target_unit(stmt.target, stmt)
            if target_unit is not None and isinstance(
                    stmt.op, (ast.Add, ast.Sub, ast.Mod, ast.FloorDiv)):
                self._record("cross-unit-arithmetic", stmt, {
                    "a": u_const(target_unit), "b": value,
                    "ctx": f"augmented assignment to "
                           f"'{_target_name(stmt.target)}'"})
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.eval_expr(stmt.value)
                self.return_exprs.append(value)
                if self.declared_unit is not None and not self.is_converter:
                    self._record("cross-unit-return", stmt, {
                        "declared": self.declared_unit, "v": value,
                        "fn": self.name})
        elif isinstance(stmt, (ast.If,)):
            self.eval_expr(stmt.test)
            self._branches(stmt, [stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test)
            self._branches(stmt, [stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                self.eval_expr(item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            blocks = [stmt.body]
            for handler in stmt.handlers:
                blocks.append(handler.body)
            self._branches(stmt, blocks)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, ast.Global):
            # A ``global`` declaration inside a function announces a
            # rebind of module state — the canonical relocation hazard.
            if not self.module_level:
                for name in stmt.names:
                    self.global_writes.append({
                        "line": stmt.lineno, "col": stmt.col_offset,
                        "name": f"{self.module.qualname}.{name}",
                        "how": "declared global and rebound"})
        # pass/break/continue/import/nonlocal: no unit effect

    def _branches(self, stmt: ast.stmt,
                  blocks: list[list[ast.stmt]]) -> None:
        before = dict(self.env)
        outcomes: list[dict[str, dict]] = []
        for block in blocks:
            self.env = dict(before)
            self.exec_block(block)
            outcomes.append(self.env)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)) \
                or (isinstance(stmt, ast.If) and not stmt.orelse):
            outcomes.append(before)
        merged: dict[str, dict] = {}
        names = set()
        for outcome in outcomes:
            names.update(outcome)
        for name in names:
            merged[name] = u_join([
                outcome.get(name, before.get(name, U_UNKNOWN))
                for outcome in outcomes])
        self.env = merged

    def _exec_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        self.eval_expr(stmt.iter)
        if isinstance(stmt.target, ast.Name):
            unit = unit_of_name(stmt.target.id)
            self.env[stmt.target.id] = u_const(unit or "unknown")
        reason = _unordered_reason(stmt.iter)
        loop_record = None
        if reason is not None:
            loop_record = {
                "line": stmt.lineno, "col": stmt.col_offset,
                "reason": reason, "calls": [], "direct": False,
                "draws": False,
            }
            self._loop_stack.append(loop_record)
        try:
            self._branches(stmt, [stmt.body, stmt.orelse])
        finally:
            if loop_record is not None:
                self._loop_stack.pop()
                loop_record["calls"] = sorted(set(loop_record["calls"]))
                self.unordered_loops.append(loop_record)

    # -- assignments ---------------------------------------------------
    def _target_unit(self, target: ast.expr, stmt: ast.stmt
                     ) -> str | None:
        annotated = self.module.unit_annotation(stmt.lineno)
        if annotated is not None:
            return annotated
        name = _target_name(target)
        if name is None:
            return None
        return unit_of_name(name.rpartition(".")[2] or name)

    def _assign(self, target: ast.expr, value: dict,
                stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, U_UNKNOWN, stmt)
            return
        target_unit = self._target_unit(target, stmt)
        if target_unit is not None:
            self._record("cross-unit-assignment", stmt, {
                "target": _target_name(target),
                "declared": target_unit, "v": value})
        if isinstance(target, ast.Name):
            self.env[target.id] = (u_const(target_unit) if target_unit
                                   else value)

    # -- expressions ---------------------------------------------------
    def eval_expr(self, node: ast.expr) -> dict:
        if isinstance(node, ast.Constant):
            return (U_UNITLESS if isinstance(node.value, (int, float))
                    and not isinstance(node.value, bool) else U_UNKNOWN)
        if isinstance(node, ast.Name):
            if node.id == "__file__" and "__file__" not in self.env:
                self.host_state.append({
                    "line": node.lineno, "col": node.col_offset,
                    "kind": "file", "what": "__file__",
                    "var": None, "ref": None, "expr": "__file__"})
            return self._name_unit(node.id)
        if isinstance(node, ast.Attribute):
            self.eval_expr(node.value)
            dotted = _dotted(node)
            if dotted is not None:
                resolved = self.module.resolve_dotted(dotted)
                constant = u_const_for_qualname(resolved)
                if constant is not None:
                    return constant
                head = dotted.split(".")[0]
                if head in self.module.summary.aliases:
                    return {"k": "g", "n": resolved}
            unit = unit_of_name(node.attr)
            return u_const(unit) if unit else U_UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.BoolOp):
            return u_join([self.eval_expr(v) for v in node.values])
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test)
            return u_join([self.eval_expr(node.body),
                           self.eval_expr(node.orelse)])
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            base = self.eval_expr(node.value)
            self.eval_expr(node.slice)
            self._subscript_host_state(node)
            if isinstance(node.slice, ast.Constant) and isinstance(
                    node.slice.value, str):
                unit = unit_of_name(node.slice.value)
                if unit:
                    return u_const(unit)
            return base
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                self.eval_expr(element)
            return U_UNKNOWN
        if isinstance(node, ast.Dict):
            for child in (*node.keys, *node.values):
                if child is not None:
                    self.eval_expr(child)
            return U_UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for generator in node.generators:
                self.eval_expr(generator.iter)
                for condition in generator.ifs:
                    self.eval_expr(condition)
            if isinstance(node, ast.DictComp):
                self.eval_expr(node.key)
                self.eval_expr(node.value)
            else:
                self.eval_expr(node.elt)
            return U_UNKNOWN
        if isinstance(node, ast.Lambda):
            return U_UNKNOWN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_expr(child)
        return U_UNKNOWN

    def _name_unit(self, name: str) -> dict:
        if name in self.env:
            return self.env[name]
        if name in self.module.summary.constants and not self.module_level:
            return {"k": "g", "n": f"{self.module.qualname}.{name}"}
        if name in self.module.summary.aliases:
            target = self.module.summary.aliases[name]
            return u_const_for_qualname(target) or {"k": "g", "n": target}
        unit = unit_of_name(name)
        return u_const(unit) if unit else U_UNKNOWN

    def _binop(self, node: ast.BinOp) -> dict:
        left = self.eval_expr(node.left)
        right = self.eval_expr(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            self._record("cross-unit-arithmetic", node, {
                "a": left, "b": right,
                "ctx": f"'{type(node.op).__name__.lower()}' expression"})
            return u_join([left, right])
        if isinstance(node.op, ast.FloorDiv):
            self._record("cross-unit-arithmetic", node, {
                "a": left, "b": right, "ctx": "floor division"})
            return U_UNITLESS
        if isinstance(node.op, ast.Mult):
            return {"k": "m", "a": left, "b": right}
        if isinstance(node.op, (ast.Div,)):
            return {"k": "d", "a": left, "b": right}
        return U_UNKNOWN

    def _compare(self, node: ast.Compare) -> dict:
        operands = [self.eval_expr(node.left)]
        operands.extend(self.eval_expr(c) for c in node.comparators)
        if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                               ast.Eq, ast.NotEq)) for op in node.ops):
            self._record("cross-unit-comparison", node, {"xs": operands})
        return U_UNKNOWN

    def _call(self, node: ast.Call) -> dict:
        kw_units = {keyword.arg: self.eval_expr(keyword.value)
                    for keyword in node.keywords
                    if keyword.arg is not None}
        for keyword in node.keywords:
            if keyword.arg is None:
                self.eval_expr(keyword.value)
        arg_units = [self.eval_expr(arg) for arg in node.args]

        func = node.func
        callee_name: str | None = None
        candidates: list[str] = []
        if isinstance(func, ast.Name):
            callee_name = func.id
            candidates = self._resolve_name_call(func.id)
        elif isinstance(func, ast.Attribute):
            self.eval_expr(func.value)
            callee_name = func.attr
            candidates = self._resolve_attr_call(func)
            self._detect_schedule(func, node)
            if func.attr in _GENERATOR_DRAW_METHODS:
                self.draws.append({
                    "line": node.lineno, "col": node.col_offset,
                    "recv": _dotted(func.value), "method": func.attr})
                for loop in self._loop_stack:
                    loop["draws"] = True
            if func.attr in _MUTATING_METHODS:
                self._module_mutation(func.value, node,
                                      f".{func.attr}() call")
            if func.attr in _POOL_SUBMIT_METHODS:
                self._detect_boundary(func, node)
        self._detect_impurity(func, node)
        self._detect_host_state(func, node)
        self._detect_fs_write(func, node)
        self._detect_digest_hazard(func, node)

        # The <target>_from_<source> naming convention is authoritative
        # even when the converter is defined outside the analysis roots.
        conversion = (conversion_units(callee_name)
                      if callee_name is not None else None)
        if candidates:
            self.calls.extend(candidates)
            edge = {"f": candidates, "line": node.lineno,
                    "col": node.col_offset,
                    "name": callee_name or "<call>"}
            self.call_edges.append(edge)
            if self._loop_stack:
                for loop in self._loop_stack:
                    loop["calls"].extend(candidates)
        if candidates or conversion is not None:
            for index, value in enumerate(arg_units):
                if isinstance(node.args[index], ast.Starred):
                    continue
                check = {"f": candidates, "i": index, "v": value,
                         "callee": callee_name}
                if conversion is not None and index == 0:
                    check["param_unit"] = conversion[1]
                self._record("cross-unit-argument", node, check)
        for kw_name, value in kw_units.items():
            self._record("cross-unit-argument", node, {
                "f": candidates, "kw": kw_name, "v": value,
                "callee": callee_name or "<call>"})

        if callee_name in _PASSTHROUGH_CALLS and arg_units:
            return arg_units[0]
        if callee_name in _JOIN_CALLS and arg_units:
            return u_join(arg_units)
        if callee_name == "sum" and arg_units:
            return arg_units[0]
        if isinstance(func, ast.Attribute) and func.attr in (
                "floor", "ceil") and arg_units:
            return arg_units[0]
        if conversion is not None:
            return u_const(conversion[0])
        if candidates:
            return {"k": "r", "f": candidates}
        if callee_name is not None:
            unit = unit_of_name(callee_name)
            if unit:
                return u_const(unit)
        return U_UNKNOWN

    def _resolve_name_call(self, name: str) -> list[str]:
        if name in self.local_defs:
            return [self.local_defs[name]]
        if name in self.env:
            # A parameter or locally rebound name; its target is dynamic.
            return []
        if name in self.module.summary.aliases:
            return [self.module.summary.aliases[name]]
        if name in _BUILTIN_NAMES:
            return []
        # Otherwise assume a sibling definition in the same module.
        return [f"{self.module.qualname}.{name}"]

    def _resolve_attr_call(self, func: ast.Attribute) -> list[str]:
        dotted = _dotted(func)
        if dotted is None:
            return []
        head = dotted.split(".")[0]
        if head in ("self", "cls") and self.class_name is not None:
            tail = dotted.split(".", 1)[1]
            if "." not in tail:
                return [f"{self.module.qualname}.{self.class_name}.{tail}"]
            return []
        if head in self.module.summary.aliases:
            return [self.module.resolve_dotted(dotted)]
        return []

    # -- purity --------------------------------------------------------
    def _detect_schedule(self, func: ast.Attribute,
                         node: ast.Call) -> None:
        if func.attr in _SCHEDULE_METHODS:
            self.schedules = True
            for loop in self._loop_stack:
                loop["direct"] = True

    def _detect_impurity(self, func: ast.expr, node: ast.Call) -> None:
        dotted = _dotted(func)
        if dotted is None:
            return
        resolved = self.module.resolve_dotted(dotted)
        parts = resolved.split(".")
        if parts[0] == "time" and len(parts) == 2 \
                and parts[1] in _WALL_CLOCK_TIME_FUNCS:
            self._effect(self.wall_clock, node, resolved)
        elif resolved in {f"time.{f}" for f in _WALL_CLOCK_TIME_FUNCS}:
            self._effect(self.wall_clock, node, resolved)
        elif parts[0] == "datetime" and parts[-1] in \
                _WALL_CLOCK_DATETIME_FUNCS:
            self._effect(self.wall_clock, node, resolved)
        elif parts[0] == "random" and len(parts) == 2:
            self._effect(self.global_rng, node, resolved)
        elif len(parts) >= 2 and parts[-2] == "random" \
                and parts[0] in ("numpy",) and (
                    parts[-1] in _GLOBAL_NP_RANDOM):
            self._effect(self.global_rng, node, resolved)

    def _effect(self, sink: list[dict], node: ast.Call,
                what: str) -> None:
        sink.append({"line": node.lineno, "col": node.col_offset,
                     "what": what})

    # -- distributability ----------------------------------------------
    def _detect_host_state(self, func: ast.expr,
                           node: ast.Call) -> None:
        dotted = _dotted(func)
        if dotted is None:
            return
        head = dotted.split(".")[0]
        if head in self.env or head in self.local_defs:
            return
        resolved = self.module.resolve_dotted(dotted)
        if resolved in _ENV_READ_CALLS:
            key = node.args[0] if node.args else None
            var, ref, expr = (self._env_var(key) if key is not None
                              else (None, None, "<missing>"))
            self._host(node, "env", resolved, var=var, ref=ref,
                       expr=expr)
        elif resolved in _CWD_CALLS:
            self._host(node, "cwd", resolved)
        elif resolved in _HOST_ID_CALLS:
            self._host(node, "host-id", resolved)
        elif resolved.split(".")[0] == "locale":
            self._host(node, "locale", resolved)
        elif resolved in _PROCESS_CALLS:
            self._host(node, "process", resolved)

    def _host(self, node: ast.AST, kind: str, what: str, *,
              var: str | None = None, ref: str | None = None,
              expr: str | None = None) -> None:
        self.host_state.append({
            "line": getattr(node, "lineno", 1),
            "col": getattr(node, "col_offset", 0),
            "kind": kind, "what": what, "var": var, "ref": ref,
            "expr": expr})

    def _subscript_host_state(self, node: ast.Subscript) -> None:
        dotted = _dotted(node.value)
        if dotted is None:
            return
        if self.module.resolve_dotted(dotted) != "os.environ":
            return
        var, ref, expr = self._env_var(node.slice)
        self._host(node, "env", "os.environ[...]", var=var, ref=ref,
                   expr=expr)

    def _env_var(self, node: ast.expr
                 ) -> tuple[str | None, str | None, str]:
        """``(literal name, constant qualname, source text)`` of a key.

        Indirect names resolve through this module's string constants;
        imported constants come back as a ``ref`` qualname for the
        whole-program pass to look up across modules.
        """
        expr = ast.unparse(node)
        if isinstance(node, ast.Constant) and isinstance(
                node.value, str):
            return node.value, None, expr
        if isinstance(node, ast.Name) and node.id not in self.env:
            value = self.module.summary.str_constants.get(node.id)
            if value is not None:
                return value, None, expr
            if node.id in self.module.summary.aliases:
                return None, self.module.summary.aliases[node.id], expr
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None \
                    and dotted.split(".")[0] in self.module.summary.aliases:
                return None, self.module.resolve_dotted(dotted), expr
        return None, None, expr

    def _module_mutation(self, base: ast.expr, node: ast.AST,
                         how: str) -> None:
        if self.module_level or not isinstance(base, ast.Name):
            return
        name = base.id
        if name in self.env or name in self.local_defs:
            return
        if name in self.module.summary.mutable_globals:
            self.global_writes.append({
                "line": getattr(node, "lineno", 1),
                "col": getattr(node, "col_offset", 0),
                "name": f"{self.module.qualname}.{name}", "how": how})

    def _detect_fs_write(self, func: ast.expr, node: ast.Call) -> None:
        if isinstance(func, ast.Name):
            if func.id == "open" and func.id not in self.env \
                    and func.id not in self.local_defs \
                    and func.id not in self.module.summary.aliases:
                mode = self._open_mode(node)
                if mode is not None and any(c in mode for c in "wax+"):
                    self._fs(node, f"open(..., {mode!r})")
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "open":
            mode = self._open_mode(node)
            if mode is not None and any(c in mode for c in "wax+"):
                self._fs(node, f".open(..., {mode!r})")
            return
        if func.attr in _FS_WRITE_METHODS:
            self._fs(node, f".{func.attr}()")
            return
        dotted = _dotted(func)
        if dotted is None:
            return
        head = dotted.split(".")[0]
        if head in self.env or head in self.local_defs:
            return
        resolved = self.module.resolve_dotted(dotted)
        if resolved in _FS_WRITE_CALLS or resolved.split(".")[0] in (
                "shutil", "tempfile"):
            self._fs(node, f"{resolved}()")

    def _open_mode(self, node: ast.Call) -> str | None:
        mode: ast.expr | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(
                mode.value, str):
            return mode.value
        return None

    def _fs(self, node: ast.Call, what: str) -> None:
        self.fs_writes.append({"line": node.lineno,
                               "col": node.col_offset, "what": what})

    def _detect_boundary(self, func: ast.Attribute,
                         node: ast.Call) -> None:
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            hazard = self._boundary_hazard(arg)
            if hazard is not None:
                self.boundary.append({
                    "line": node.lineno, "col": node.col_offset,
                    "method": func.attr, "hazard": hazard})

    def _boundary_hazard(self, arg: ast.expr) -> str | None:
        if isinstance(arg, ast.Lambda):
            return "a lambda"
        if isinstance(arg, ast.Name):
            if arg.id in self.local_defs:
                return f"the locally defined function '{arg.id}'"
            if arg.id in self._lambda_names:
                return f"the lambda bound to '{arg.id}'"
            if arg.id in self.local_classes:
                return f"the locally defined class '{arg.id}'"
        if isinstance(arg, ast.Call) and isinstance(
                arg.func, ast.Name) and arg.func.id in self.local_classes:
            return f"an instance of the local class '{arg.func.id}'"
        return None

    def _detect_digest_hazard(self, func: ast.expr,
                              node: ast.Call) -> None:
        if isinstance(func, ast.Name):
            if func.id in ("hash", "id") and func.id not in self.env \
                    and func.id not in self.local_defs \
                    and func.id not in self.module.summary.aliases:
                what = ("builtin hash() (salted per-process via "
                        "PYTHONHASHSEED)" if func.id == "hash" else
                        "builtin id() (memory-layout dependent)")
                self.digest_hazards.append({
                    "line": node.lineno, "col": node.col_offset,
                    "what": what})
            return
        dotted = _dotted(func)
        if dotted is None:
            return
        if self.module.resolve_dotted(dotted) == "json.dumps":
            sort_ok = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords)
            if not sort_ok:
                self.digest_hazards.append({
                    "line": node.lineno, "col": node.col_offset,
                    "what": "json.dumps(...) without sort_keys=True"})

    # -- bookkeeping ---------------------------------------------------
    def _record(self, rule: str, node: ast.AST, payload: dict) -> None:
        check = {"rule": rule,
                 "line": getattr(node, "lineno", 1),
                 "col": getattr(node, "col_offset", 0)}
        check.update(payload)
        self.checks.append(check)


class _StreamWalker:
    """Collect RNG stream acquisitions, buffer claims, and escapes.

    A separate, parent-aware pass (rather than more state inside the
    flow-sensitive :class:`_FunctionExtractor`) because classifying an
    acquisition depends on its *syntactic context* — the assignment
    target, the enclosing call, the chained attribute — which the
    bottom-up expression evaluator never sees.  Records land on the
    module summary for the project-level ``detsan`` pass.
    """

    def __init__(self, module: _ModuleExtractor):
        self.module = module
        self.shared_lines = {
            lineno for lineno, line in enumerate(module.lines, start=1)
            if _DETSAN_SHARED_RE.search(line)}

    def run(self) -> None:
        top = [stmt for stmt in self.module.tree.body
               if not isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef))]
        if top:
            self._scan(top, f"{self.module.qualname}.<module>", None, top)
        self._walk_body(self.module.tree.body, self.module.qualname,
                        None, None)

    def _walk_body(self, stmts: list[ast.stmt], scope: str,
                   class_qualname: str | None,
                   class_node: ast.ClassDef | None) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs are scanned as part of the enclosing
                # function's subtree (attributed to the outer scope).
                region = [class_node] if class_node is not None \
                    else stmt.body
                self._scan(stmt.body, f"{scope}.{stmt.name}",
                           class_qualname, region)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{scope}.{stmt.name}"
                self._walk_body(stmt.body, qualname, qualname, stmt)

    # -- one function (or the module body) ------------------------------
    def _scan(self, stmts: list[ast.stmt], func: str,
              class_qualname: str | None,
              region: list[ast.AST] | ast.ClassDef | None) -> None:
        from repro.devtools.detsan.resolver import (is_resolved,
                                                    is_stream_acquisition,
                                                    resolve_stream_name)
        parents: dict[ast.AST, ast.AST] = {}
        nodes: list[ast.AST] = []
        for stmt in stmts:
            for parent in ast.walk(stmt):
                nodes.append(parent)
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
        by_node: dict[int, dict] = {}
        for node in nodes:
            if not (isinstance(node, ast.Call)
                    and is_stream_acquisition(node)):
                continue
            scope = self._receiver_scope(node.func.value, func,
                                         class_qualname, node.lineno)
            if scope is None:
                continue
            template = resolve_stream_name(node.args[0])
            record = {
                "line": node.lineno, "col": node.col_offset,
                "template": template, "resolved": is_resolved(template),
                "arg": ast.unparse(node.args[0]),
                "scope": scope, "func": func,
                "owner_kind": "other", "owner": [func],
                "attr": None, "local": None,
                "drawn": False, "uses": 1, "handoffs": [],
                "buffered": False,
                "shared": node.lineno in self.shared_lines,
            }
            self._classify(node, record, parents, func, class_qualname)
            by_node[id(node)] = record
            self.module.summary.streams.append(record)
        for record in by_node.values():
            if record["owner_kind"] == "local":
                self._refine_local(record, nodes, parents, func,
                                   class_qualname)
            elif record["owner_kind"] == "attribute":
                self._refine_attribute(record, func, class_qualname)
        self._scan_buffers(nodes, parents, func, class_qualname,
                           region, by_node)

    def _receiver_scope(self, recv: ast.expr, func: str,
                        class_qualname: str | None,
                        line: int) -> str | None:
        """Registry-scope key for an acquisition, or None if the
        receiver does not look like an RngRegistry.

        Scoping keeps independent registries (one per run/system) from
        being conflated: ``self.rngs`` streams key by the owning class,
        plain locals by the enclosing function, and a fresh
        ``RngRegistry(...)``/``fork(...)`` receiver by its call site.
        """
        dotted = _dotted(recv)
        if dotted is not None:
            last = dotted.rpartition(".")[2].lower()
            if "rng" not in last and last != "registry":
                return None
            if dotted.startswith("self.") and class_qualname:
                return class_qualname
            return func
        if isinstance(recv, ast.Call):
            if isinstance(recv.func, ast.Attribute) \
                    and recv.func.attr == "fork":
                return f"{func}:{line}"
            callee = _dotted(recv.func)
            if callee is not None:
                resolved = self.module.resolve_dotted(callee)
                if resolved.rpartition(".")[2] == "RngRegistry":
                    return f"{func}:{line}"
        return None

    def _classify(self, node: ast.Call, record: dict,
                  parents: dict[ast.AST, ast.AST], func: str,
                  class_qualname: str | None) -> None:
        parent = parents.get(node)
        if isinstance(parent, ast.keyword):
            parent = parents.get(parent)
        if isinstance(parent, ast.Call) and node is not parent.func:
            record["owner_kind"] = "argument"
            record["owner"] = (self._callee_candidates(
                parent, class_qualname) or [func])
            return
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (parent.targets
                       if isinstance(parent, ast.Assign)
                       else [parent.target])
            if len(targets) == 1:
                target = targets[0]
                if isinstance(target, ast.Attribute) and isinstance(
                        target.value, ast.Name) \
                        and target.value.id == "self" and class_qualname:
                    record["owner_kind"] = "attribute"
                    record["owner"] = [class_qualname]
                    record["attr"] = target.attr
                    return
                if isinstance(target, ast.Name):
                    record["owner_kind"] = "local"
                    record["local"] = target.id
                    return
            record["owner_kind"] = "other"
            return
        if isinstance(parent, ast.Attribute) and parent.value is node:
            grand = parents.get(parent)
            record["owner_kind"] = "inline"
            if parent.attr in _GENERATOR_DRAW_METHODS and isinstance(
                    grand, ast.Call) and grand.func is parent:
                record["drawn"] = True
            return
        if isinstance(parent, ast.Expr):
            record["owner_kind"] = "discarded"
            record["uses"] = 0
            return

    def _callee_candidates(self, call: ast.Call,
                           class_qualname: str | None) -> list[str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            aliases = self.module.summary.aliases
            if name in aliases:
                return [aliases[name]]
            if name in _BUILTIN_NAMES:
                return []
            return [f"{self.module.qualname}.{name}"]
        dotted = _dotted(func)
        if dotted is None:
            return []
        head, _, tail = dotted.partition(".")
        if head in ("self", "cls") and class_qualname and "." not in tail:
            return [f"{class_qualname}.{tail}"]
        if head in self.module.summary.aliases:
            return [self.module.resolve_dotted(dotted)]
        return []

    # -- use analysis ---------------------------------------------------
    def _refine_local(self, record: dict, nodes: list[ast.AST],
                      parents: dict[ast.AST, ast.AST], func: str,
                      class_qualname: str | None) -> None:
        name = record["local"]
        uses = [node for node in nodes
                if isinstance(node, ast.Name) and node.id == name
                and isinstance(node.ctx, ast.Load)]
        self._apply_uses(record, uses, parents, class_qualname)
        handoffs = sorted(set(record["handoffs"]))
        if record["uses"] == 0:
            record["owner"] = [func]
        elif handoffs and not record["drawn"]:
            record["owner_kind"] = "local-arg"
            record["owner"] = handoffs
        elif handoffs:
            # Drawn locally *and* handed off: multiple consumers from
            # one acquisition; the sharing rule sees both owners.
            record["owner"] = [func] + handoffs
        else:
            record["owner"] = [func]

    def _refine_attribute(self, record: dict, func: str,
                          class_qualname: str | None) -> None:
        """Class-wide uses of a ``self.<attr> = rngs.stream(...)`` field."""
        class_node = self._class_node(class_qualname)
        if class_node is None:
            return
        parents: dict[ast.AST, ast.AST] = {}
        nodes: list[ast.AST] = []
        for parent in ast.walk(class_node):
            nodes.append(parent)
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        attr = record["attr"]
        uses = [node for node in nodes
                if isinstance(node, ast.Attribute) and node.attr == attr
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and isinstance(node.ctx, ast.Load)]
        self._apply_uses(record, uses, parents, class_qualname)
        record["owner"] = [class_qualname]

    def _apply_uses(self, record: dict, uses: list[ast.AST],
                    parents: dict[ast.AST, ast.AST],
                    class_qualname: str | None) -> None:
        record["uses"] = len(uses)
        for use in uses:
            parent = parents.get(use)
            if isinstance(parent, ast.Attribute) and parent.value is use:
                grand = parents.get(parent)
                if parent.attr in _GENERATOR_DRAW_METHODS and isinstance(
                        grand, ast.Call) and grand.func is parent:
                    record["drawn"] = True
                continue
            if isinstance(parent, ast.keyword):
                parent = parents.get(parent)
            if isinstance(parent, ast.Call) and use is not parent.func:
                candidates = self._callee_candidates(parent,
                                                     class_qualname)
                last = candidates[0].rpartition(".")[2] if candidates \
                    else None
                callee_attr = (parent.func.attr
                               if isinstance(parent.func, ast.Attribute)
                               else None)
                if last in _BUFFER_CLASSES:
                    # Claimed by a buffered sampler: consumed, but the
                    # buffer is machinery, not a second owner.
                    record["buffered"] = True
                    record["drawn"] = True
                elif callee_attr in _BUFFER_DRAW_METHODS:
                    # The sanctioned sampler.sample(rng) idiom.
                    record["drawn"] = True
                else:
                    record["handoffs"].extend(
                        candidates or [ast.unparse(parent.func)])

    def _class_node(self, class_qualname: str | None
                    ) -> ast.ClassDef | None:
        if class_qualname is None:
            return None
        name = class_qualname.rpartition(".")[2]
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    # -- buffer claims and escapes --------------------------------------
    def _scan_buffers(self, nodes: list[ast.AST],
                      parents: dict[ast.AST, ast.AST], func: str,
                      class_qualname: str | None,
                      region: list[ast.AST] | ast.ClassDef | None,
                      by_node: dict[int, dict]) -> None:
        from repro.devtools.detsan.resolver import is_stream_acquisition
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            candidates = self._callee_candidates(node, class_qualname)
            buffer = candidates[0].rpartition(".")[2] if candidates \
                else None
            if buffer not in _BUFFER_CLASSES:
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            if buffer == "BufferedSampler":
                rng_node = (node.args[1] if len(node.args) > 1
                            else kwargs.get("rng"))
            else:
                rng_node = (node.args[0] if node.args
                            else kwargs.get("rng"))
            if rng_node is None:
                continue
            if isinstance(rng_node, ast.Call) \
                    and is_stream_acquisition(rng_node):
                acq = by_node.get(id(rng_node))
                if acq is not None:
                    acq["buffered"] = True
                    acq["drawn"] = True
                descr = "stream:" + (acq["template"] if acq
                                     and acq["template"] else
                                     ast.unparse(rng_node))
                dotted = None
            else:
                dotted = _dotted(rng_node)
                descr = dotted or ast.unparse(rng_node)
            self.module.summary.rng_buffers.append({
                "line": node.lineno, "col": node.col_offset,
                "buffer": buffer, "rng": descr, "func": func,
            })
            if dotted is not None:
                self._scan_escapes(node, dotted, buffer, func,
                                   class_qualname, region)

    def _scan_escapes(self, claim: ast.Call, dotted: str, buffer: str,
                      func: str, class_qualname: str | None,
                      region: list[ast.AST] | ast.ClassDef | None
                      ) -> None:
        """Uses of a claimed generator outside the buffered idiom.

        The claimed rng may only flow back into the claiming sampler
        (``.sample(rng)`` / ``.sample_batch`` / ``.next`` / ``.owns``);
        a direct draw or a hand-off to any other callee desynchronizes
        the pre-drawn block from the scalar bit-stream, so it is
        recorded as an escape even when it sits on a conditional path.
        """
        if region is None:
            return
        roots: list[ast.AST] = (region if isinstance(region, list)
                                else [region])
        names = {dotted}
        if "." not in dotted:
            # The claim took a bare local/param; its `self.X = rng`
            # aliases share the stream.
            for root in roots:
                for node in ast.walk(root):
                    if isinstance(node, ast.Assign) \
                            and isinstance(node.value, ast.Name) \
                            and node.value.id == dotted:
                        for target in node.targets:
                            target_dotted = _dotted(target)
                            if target_dotted \
                                    and target_dotted.startswith("self."):
                                names.add(target_dotted)
        parents: dict[ast.AST, ast.AST] = {}
        nodes: list[ast.AST] = []
        for root in roots:
            for parent in ast.walk(root):
                nodes.append(parent)
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
        claim_args = set(map(id, claim.args)) | {
            id(kw.value) for kw in claim.keywords}
        for node in nodes:
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            node_dotted = _dotted(node)
            if node_dotted not in names or id(node) in claim_args:
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                grand = parents.get(parent)
                if parent.attr in _GENERATOR_DRAW_METHODS and isinstance(
                        grand, ast.Call) and grand.func is parent:
                    self._record_escape(grand, buffer, node_dotted, func,
                                        f"drawn directly via "
                                        f".{parent.attr}()")
                continue
            if isinstance(parent, ast.keyword):
                parent = parents.get(parent)
            if isinstance(parent, ast.Call) and node is not parent.func:
                callee_attr = (parent.func.attr
                               if isinstance(parent.func, ast.Attribute)
                               else None)
                if callee_attr in _BUFFER_DRAW_METHODS:
                    continue
                candidates = self._callee_candidates(parent,
                                                     class_qualname)
                last = candidates[0].rpartition(".")[2] if candidates \
                    else None
                if last in _BUFFER_CLASSES:
                    self._record_escape(
                        parent, buffer, node_dotted, func,
                        f"also claimed by a second {last}")
                    continue
                callee = (candidates[0] if candidates
                          else ast.unparse(parent.func))
                self._record_escape(parent, buffer, node_dotted, func,
                                    f"passed to {callee}()")

    def _record_escape(self, node: ast.AST, buffer: str, expr: str,
                       func: str, detail: str) -> None:
        self.module.summary.rng_escapes.append({
            "line": getattr(node, "lineno", 1),
            "col": getattr(node, "col_offset", 0),
            "buffer": buffer, "stream_expr": expr, "func": func,
            "detail": detail,
        })


def u_const_for_qualname(qualname: str) -> dict | None:
    unit = CONSTANT_UNIT_SEEDS.get(qualname)
    return u_const(unit) if unit else None


def _target_name(target: ast.expr) -> str | None:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return _dotted(target)
    return None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES)


def _unordered_reason(node: ast.expr) -> str | None:
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return "a .keys() view"
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        left = _unordered_reason(node.left)
        right = _unordered_reason(node.right)
        if left or right:
            return left or right
    return None


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def _parse_module(path: Path, source: str) -> ast.Module:
    for hook in PARSE_HOOKS:
        hook(path.as_posix())
    return ast.parse(source, filename=path.as_posix())


def load_project(paths: Iterable[str | Path], *,
                 exclude: Callable[[str], bool] | None = None,
                 cache=None) -> Project:
    """Parse/extract every module under ``paths`` into a project model.

    ``cache`` is an :class:`repro.devtools.analyze.cache.AnalysisCache`
    (or None); a cache hit restores the stored summary without calling
    ``ast.parse`` at all.
    """
    modules: list[ModuleSummary] = []
    files_checked = 0
    parsed = 0
    from_cache = 0
    for path in iter_python_files(paths):
        path_str = path.as_posix()
        if exclude is not None and exclude(path_str):
            continue
        files_checked += 1
        try:
            raw = path.read_bytes()
        except OSError as exc:
            summary = ModuleSummary(
                path=path_str, qualname=module_qualname(path),
                parse_error={"line": 1, "col": 0, "message": str(exc)})
            modules.append(summary)
            continue
        digest = hashlib.sha256(raw).hexdigest()
        if cache is not None:
            hit = cache.lookup(path_str, digest)
            if hit is not None:
                modules.append(hit)
                from_cache += 1
                continue
        qualname = module_qualname(path)
        try:
            source = raw.decode("utf-8")
            tree = _parse_module(path, source)
            parsed += 1
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            col = (getattr(exc, "offset", 1) or 1) - 1
            message = (exc.msg if isinstance(exc, SyntaxError) and exc.msg
                       else str(exc))
            summary = ModuleSummary(
                path=path_str, qualname=qualname, content_hash=digest,
                parse_error={"line": line, "col": max(col, 0),
                             "message": message})
            modules.append(summary)
            if cache is not None:
                cache.store(path_str, digest, summary)
            continue
        summary = _ModuleExtractor(path_str, qualname, source, tree).run()
        summary.content_hash = digest
        modules.append(summary)
        if cache is not None:
            cache.store(path_str, digest, summary)
    return Project(modules=modules, files_checked=files_checked,
                   parsed=parsed, from_cache=from_cache)
