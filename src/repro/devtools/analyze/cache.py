"""Incremental analysis cache keyed by content hash.

The expensive step of whole-program analysis is parsing and summary
extraction; the global passes are cheap.  Summaries are fully
JSON-serialisable (see :class:`~repro.devtools.analyze.loader.ModuleSummary`),
so the cache stores them per file keyed by the sha256 of the file's
bytes.  On a re-run over an unchanged tree every lookup hits and
``ast.parse`` is never called — asserted in the test-suite via
:data:`repro.devtools.analyze.loader.PARSE_HOOKS`.

The cache file is versioned with :data:`ANALYZER_VERSION`; bump it
whenever summary extraction changes shape so stale caches are
discarded wholesale rather than misinterpreted.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.analyze.loader import ModuleSummary

__all__ = ["ANALYZER_VERSION", "DEFAULT_CACHE_PATH", "AnalysisCache"]

#: Bump on any change to summary extraction or the summary schema.
#: "3": distributability channels (host_state, global_writes, fs_writes,
#: boundary, digest_hazards, decorators, str_constants, mutable_globals).
ANALYZER_VERSION = "3"

DEFAULT_CACHE_PATH = ".urllc5g-analyze-cache.json"


class AnalysisCache:
    """Content-addressed store of per-module summaries."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) \
                or payload.get("analyzer_version") != ANALYZER_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def lookup(self, path: str, digest: str) -> ModuleSummary | None:
        """The stored summary for ``path`` iff its content still matches."""
        entry = self.entries.get(path)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_json(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, path: str, digest: str,
              summary: ModuleSummary) -> None:
        self.entries[path] = {"hash": digest,
                              "summary": summary.to_json()}
        self._dirty = True

    def save(self) -> None:
        """Persist to disk (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {"analyzer_version": ANALYZER_VERSION,
                   "entries": self.entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, sort_keys=True),
                             encoding="utf-8")
        self._dirty = False
