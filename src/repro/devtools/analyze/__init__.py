"""``urllc5g analyze`` — whole-program static analysis.

Where :mod:`repro.devtools.lintkit` checks one expression in one file,
this package loads *all* of ``src/`` into a project model (symbol
table + call graph) and runs two cross-module passes over it:

- **time-unit inference** (:mod:`.units`): abstract interpretation over
  the unit lattice ``tc | ns | us | ms | s | unitless | unknown``,
  seeded from name suffixes, the :mod:`repro.phy.timebase` converter
  signatures and ``# unit:`` annotations, propagated through
  assignments, returns and call boundaries;
- **transitive purity** (:mod:`.purity`): wall-clock, global-RNG and
  unordered-iteration-before-scheduling taint propagated through the
  call graph, catching the helper-indirection cases per-file lint is
  blind to.

Findings reuse the lintkit :class:`~repro.devtools.lintkit.core.Violation`
shape, so the text/JSON/SARIF reporters and the reviewed-baseline
workflow are shared between both tools.  See docs/ANALYSIS.md.
"""

from repro.devtools.analyze.baseline import (
    Baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.analyze.config import AnalyzeConfig, load_analyze_config
from repro.devtools.analyze.cache import AnalysisCache
from repro.devtools.analyze.engine import (
    ANALYZE_RULES,
    AnalysisReport,
    analyze_paths,
    render_analysis_json,
    render_analysis_sarif,
    render_analysis_text,
)
from repro.devtools.analyze.loader import PARSE_HOOKS, Project, load_project

__all__ = [
    "ANALYZE_RULES",
    "AnalysisCache",
    "AnalysisReport",
    "AnalyzeConfig",
    "Baseline",
    "PARSE_HOOKS",
    "Project",
    "analyze_paths",
    "load_analyze_config",
    "load_baseline",
    "load_project",
    "render_analysis_json",
    "render_analysis_sarif",
    "render_analysis_text",
    "write_baseline",
]
