"""Load analyzer configuration from ``pyproject.toml``.

The ``[tool.urllc5g.analyze]`` table mirrors the lint one::

    [tool.urllc5g.analyze]
    ignore = []                        # analyzer rule ids disabled
    exclude = ["*/fixtures/*"]         # path globs never analyzed
    baseline = "analyze-baseline.json" # reviewed accepted findings
    cache = ".urllc5g-analyze-cache.json"

Per-line/per-file escapes use ``# analyze: disable=RULE`` pragmas (see
docs/ANALYSIS.md); the baseline file is the reviewed bulk mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lintkit.core import _glob_match
from repro.devtools.lintkit.config import find_pyproject

try:
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]

__all__ = ["AnalyzeConfig", "load_analyze_config"]


@dataclass
class AnalyzeConfig:
    """Which analyzer rules run where; see ``[tool.urllc5g.analyze]``."""

    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str | None = None
    cache: str | None = None
    _extra_excludes: tuple[str, ...] = field(default=(), repr=False)

    def is_excluded(self, path: str) -> bool:
        patterns = self.exclude + self._extra_excludes
        return any(_glob_match(path, pattern) for pattern in patterns)


def load_analyze_config(pyproject: str | Path | None = None,
                        start: str | Path = ".") -> AnalyzeConfig:
    """Build an :class:`AnalyzeConfig` from the nearest pyproject.

    Missing file, missing table, or a pre-3.11 interpreter all yield
    the default config.
    """
    if tomllib is None:  # pragma: no cover - Python 3.10 fallback
        return AnalyzeConfig()
    path = Path(pyproject) if pyproject is not None else (
        find_pyproject(start))
    if path is None or not path.is_file():
        return AnalyzeConfig()
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("urllc5g", {}).get("analyze", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.urllc5g.analyze] must be a table")
    baseline = table.get("baseline")
    cache = table.get("cache")
    for key, value in (("baseline", baseline), ("cache", cache)):
        if value is not None and not isinstance(value, str):
            raise ValueError(
                f"[tool.urllc5g.analyze] {key} must be a string")
    return AnalyzeConfig(
        ignore=tuple(_as_str_list(table.get("ignore", []), "ignore")),
        exclude=tuple(_as_str_list(table.get("exclude", []), "exclude")),
        baseline=baseline,
        cache=cache,
    )


def _as_str_list(value: object, key: str) -> list[str]:
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise ValueError(
            f"[tool.urllc5g.analyze] {key} must be a list of strings")
    return value
