"""``urllc5g distcheck`` — distributability certification.

Whole-program pass over the analyze project model that certifies each
``@scenario``-registered campaign entry point as safe to execute on a
remote host: no reachable writes to module-level mutable state, no
undeclared host-state observation, nothing unpicklable crossing the
pool boundary, order-stable digest material, and no filesystem writes
outside the sanctioned artifact/journal APIs.  Findings ride the same
``Violation``/pragma/baseline/SARIF machinery as lint, analyze, and
detsan; the per-scenario verdicts are emitted as
``distcheck-manifest.json`` for the multi-host dispatcher.  See the
"Distributability contract" chapter in docs/ANALYSIS.md.
"""

from repro.devtools.distcheck.config import (DistcheckConfig,
                                             load_distcheck_config)
from repro.devtools.distcheck.engine import (
    DIST_RULES,
    DistcheckReport,
    ScenarioCertification,
    distcheck_paths,
    render_distcheck_json,
    render_distcheck_manifest,
    render_distcheck_sarif,
    render_distcheck_text,
)
from repro.devtools.distcheck.manifest import (
    DISTRIBUTABLE_STATUSES,
    DistManifest,
    ManifestError,
    ScenarioVerdict,
    load_manifest,
)
from repro.devtools.distcheck.rules import (CertificationMap,
                                            ScenarioEntry,
                                            certification_map,
                                            find_scenario_entries)

__all__ = [
    "DIST_RULES",
    "DISTRIBUTABLE_STATUSES",
    "CertificationMap",
    "DistManifest",
    "DistcheckConfig",
    "DistcheckReport",
    "ManifestError",
    "ScenarioCertification",
    "ScenarioEntry",
    "ScenarioVerdict",
    "certification_map",
    "distcheck_paths",
    "find_scenario_entries",
    "load_distcheck_config",
    "load_manifest",
    "render_distcheck_json",
    "render_distcheck_manifest",
    "render_distcheck_sarif",
    "render_distcheck_text",
]
