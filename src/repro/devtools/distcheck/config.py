"""Load distcheck configuration from ``pyproject.toml``.

The ``[tool.urllc5g.distcheck]`` table extends the detsan shape with
the distributability contract knobs::

    [tool.urllc5g.distcheck]
    ignore = []                         # rule ids disabled outright
    exclude = ["*/fixtures/*"]          # path globs never analyzed
    baseline = "distcheck-baseline.json"
    cache = ".urllc5g-analyze-cache.json"
    allow-env = ["URLLC5G_*"]           # reviewed env-var contract
    refuse-scenarios = ["chaos-selftest"]
    allow-globals = []                  # reviewed mutable-state writers
    sanctioned-writers = ["repro.runner.cache.*"]
    entry-decorators = ["repro.runner.scenarios.scenario"]
    shared-roots = ["repro.runner.scenarios.run_point"]
    digest-roots = []                   # extra digest-feeding functions

``allow-env`` patterns match environment-variable *names*;
``allow-globals`` and ``sanctioned-writers`` match function
*qualnames* (fnmatch globs).  ``refuse-scenarios`` lists scenarios
deliberately outside the distributability contract: their findings
are dropped and the manifest marks them ``refused``, so a dispatcher
must never ship their points off-host.  The cache defaults to the
analyze cache file — one parse serves lint-adjacent passes, analyze,
detsan, and distcheck alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lintkit.core import _glob_match
from repro.devtools.lintkit.config import find_pyproject

try:
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]

__all__ = ["DistcheckConfig", "load_distcheck_config"]

#: The decorator that marks a remote-executable entry point.
DEFAULT_ENTRY_DECORATORS = ("repro.runner.scenarios.scenario",)
#: Functions every remote point executes besides the scenario itself.
DEFAULT_SHARED_ROOTS = ("repro.runner.scenarios.run_point",)
#: The reviewed env-var contract: runner knobs are snapshot-managed.
DEFAULT_ALLOW_ENV = ("URLLC5G_*",)


@dataclass
class DistcheckConfig:
    """The distributability contract; see ``[tool.urllc5g.distcheck]``."""

    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str | None = None
    cache: str | None = None
    allow_env: tuple[str, ...] = DEFAULT_ALLOW_ENV
    refuse_scenarios: tuple[str, ...] = ()
    allow_globals: tuple[str, ...] = ()
    sanctioned_writers: tuple[str, ...] = ()
    entry_decorators: tuple[str, ...] = DEFAULT_ENTRY_DECORATORS
    shared_roots: tuple[str, ...] = DEFAULT_SHARED_ROOTS
    digest_roots: tuple[str, ...] = ()
    _extra_excludes: tuple[str, ...] = field(default=(), repr=False)

    def is_excluded(self, path: str) -> bool:
        patterns = self.exclude + self._extra_excludes
        return any(_glob_match(path, pattern) for pattern in patterns)


_LIST_KEYS = {
    "ignore": "ignore",
    "exclude": "exclude",
    "allow-env": "allow_env",
    "refuse-scenarios": "refuse_scenarios",
    "allow-globals": "allow_globals",
    "sanctioned-writers": "sanctioned_writers",
    "entry-decorators": "entry_decorators",
    "shared-roots": "shared_roots",
    "digest-roots": "digest_roots",
}


def load_distcheck_config(pyproject: str | Path | None = None,
                          start: str | Path = ".") -> DistcheckConfig:
    """Build a :class:`DistcheckConfig` from the nearest pyproject.

    Missing file, missing table, or a pre-3.11 interpreter all yield
    the default config.
    """
    if tomllib is None:  # pragma: no cover - Python 3.10 fallback
        return DistcheckConfig()
    path = Path(pyproject) if pyproject is not None else (
        find_pyproject(start))
    if path is None or not path.is_file():
        return DistcheckConfig()
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("urllc5g", {}).get("distcheck", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.urllc5g.distcheck] must be a table")
    baseline = table.get("baseline")
    cache = table.get("cache")
    for key, value in (("baseline", baseline), ("cache", cache)):
        if value is not None and not isinstance(value, str):
            raise ValueError(
                f"[tool.urllc5g.distcheck] {key} must be a string")
    # Relative baseline/cache paths are anchored at the pyproject's
    # directory, so `--config /elsewhere/pyproject.toml` honors the
    # reviewed baseline no matter the invocation cwd.
    anchor = path.parent
    if baseline is not None:
        baseline = str(anchor / baseline)
    if cache is not None:
        cache = str(anchor / cache)
    kwargs: dict[str, object] = {"baseline": baseline, "cache": cache}
    for toml_key, attr in _LIST_KEYS.items():
        if toml_key in table:
            kwargs[attr] = tuple(
                _as_str_list(table[toml_key], toml_key))
    return DistcheckConfig(**kwargs)  # type: ignore[arg-type]


def _as_str_list(value: object, key: str) -> list[str]:
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise ValueError(
            f"[tool.urllc5g.distcheck] {key} must be a list of strings")
    return value
