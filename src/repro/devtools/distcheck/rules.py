"""Scenario reachability closure and the five ``dist-*`` rules.

Certification model: a campaign point executes remotely as
``run_point(point)`` — the scenario function registered under
``@scenario(name)`` plus everything it (transitively) calls,
including class closures for every type it constructs.  Each
distributability hazard the loader extracted (host-state reads,
module-global writes, filesystem mutations, boundary crossings,
digest-form hazards) is attributed to the set of scenarios whose
closure reaches the offending function; the engine then certifies,
baselines, or refuses each scenario from that attribution.

Violation messages deliberately never name scenarios: the reviewed
baseline fingerprints ``rule|path|message``, and attribution (which
scenarios reach a finding) must be able to change — e.g. when a new
scenario is registered — without invalidating reviewed entries.
Attribution lives in the report/manifest instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.devtools.analyze.loader import (ClassSummary, FunctionSummary,
                                           Project)
from repro.devtools.analyze.purity import _short
from repro.devtools.distcheck.config import DistcheckConfig
from repro.devtools.lintkit.core import Severity, Violation

__all__ = ["DIST_RULES", "ScenarioEntry", "CertificationMap",
           "find_scenario_entries", "certification_map",
           "distcheck_findings"]

DIST_RULES = {
    "dist-mutable-global":
        "Module-level mutable state is written on a path reachable "
        "from a scenario entry point; remote workers would diverge "
        "from the coordinator.",
    "dist-host-state":
        "Host state (environment, cwd, __file__, hostname/pid, "
        "locale) is observed on a scenario-reachable path outside the "
        "declared allow-env contract.",
    "dist-unpicklable-boundary":
        "A lambda, closure, or local class flows into a pool-submitted "
        "callable and cannot cross the process boundary.",
    "dist-digest-instability":
        "A value feeding result-cache point digests has a canonical "
        "form that depends on iteration order or process-unstable "
        "builtins.",
    "dist-filesystem-escape":
        "A scenario-reachable path writes the filesystem outside the "
        "sanctioned artifact/journal APIs.",
}

#: Functions whose *name* marks them as digest producers; their
#: closure is the dist-digest-instability domain.
_DIGEST_NAME_MARKERS = ("digest", "fingerprint")


@dataclass(frozen=True)
class ScenarioEntry:
    """One ``@scenario(name)``-registered entry point."""

    name: str
    qualname: str
    path: str
    line: int


@dataclass
class CertificationMap:
    """Reachability closure of every scenario entry point."""

    entries: list[ScenarioEntry]
    #: function qualname -> names of the scenarios that reach it
    reached_by: dict[str, frozenset[str]]
    #: scenario name -> number of reachable functions in its closure
    closure_sizes: dict[str, int]
    #: functions in the digest-producing closure
    digest_closure: frozenset[str]


def find_scenario_entries(project: Project,
                          config: DistcheckConfig) -> list[ScenarioEntry]:
    """Every function carrying a registered entry decorator."""
    targets = {project._resolve(name) or name
               for name in config.entry_decorators}
    entries: list[ScenarioEntry] = []
    seen: set[str] = set()
    for qualname in sorted(project.functions):
        summary = project.functions[qualname]
        for decorator in summary.decorators:
            resolved = project._resolve(decorator["name"]) \
                or decorator["name"]
            if resolved in targets and decorator["arg"] \
                    and decorator["arg"] not in seen:
                seen.add(decorator["arg"])
                entries.append(ScenarioEntry(
                    name=decorator["arg"], qualname=qualname,
                    path=summary.path, line=summary.line))
    return entries


def _reachable(project: Project, roots: list[str]) -> set[str]:
    """Transitive call closure, with constructed-class closure.

    A resolved call to a class means the scenario constructs it, so
    *every* method of that class is conservatively reachable — this
    covers dynamic receivers (``self.probe.summary()``) that the call
    resolver cannot follow.
    """
    seen: set[str] = set()
    work = [q for q in roots if q in project.functions]
    while work:
        qualname = work.pop()
        if qualname in seen:
            continue
        seen.add(qualname)
        summary = project.functions[qualname]
        for candidate in summary.calls:
            target = project.resolve_callable(candidate)
            if isinstance(target, FunctionSummary):
                if target.qualname not in seen:
                    work.append(target.qualname)
            elif isinstance(target, ClassSummary):
                for method in target.methods:
                    method_qualname = f"{target.qualname}.{method}"
                    if method_qualname in project.functions \
                            and method_qualname not in seen:
                        work.append(method_qualname)
    return seen


def certification_map(project: Project,
                      config: DistcheckConfig) -> CertificationMap:
    entries = find_scenario_entries(project, config)
    shared = [project._resolve(root) or root
              for root in config.shared_roots]
    reached_by: dict[str, set[str]] = {}
    closure_sizes: dict[str, int] = {}
    for entry in entries:
        closure = _reachable(project, [entry.qualname, *shared])
        closure_sizes[entry.name] = len(closure)
        for qualname in closure:
            reached_by.setdefault(qualname, set()).add(entry.name)
    digest_roots = [
        qualname for qualname, summary in project.functions.items()
        if any(marker in summary.name.lower()
               for marker in _DIGEST_NAME_MARKERS)]
    digest_roots.extend(project._resolve(root) or root
                        for root in config.digest_roots)
    return CertificationMap(
        entries=entries,
        reached_by={qualname: frozenset(names)
                    for qualname, names in reached_by.items()},
        closure_sizes=closure_sizes,
        digest_closure=frozenset(
            _reachable(project, sorted(set(digest_roots)))),
    )


def _matches(name: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatchcase(name, pattern) for pattern in patterns)


def distcheck_findings(
        project: Project, config: DistcheckConfig,
        cert: CertificationMap
) -> list[tuple[Violation, frozenset[str]]]:
    """All rule findings, each paired with its scenario attribution.

    Boundary and digest findings apply program-wide (the executor and
    the cache serve every scenario), so their attribution may be empty
    — the engine treats those as never-refusable.
    """
    findings: list[tuple[Violation, frozenset[str]]] = []
    str_constants = _project_str_constants(project)
    no_scenarios: frozenset[str] = frozenset()
    for qualname in sorted(project.functions):
        summary = project.functions[qualname]
        scenarios = cert.reached_by.get(qualname, no_scenarios)
        if scenarios:
            _scenario_scoped(findings, summary, scenarios, config,
                             str_constants)
        for record in summary.boundary:
            findings.append((Violation(
                path=summary.path, line=record["line"],
                col=record["col"],
                rule_id="dist-unpicklable-boundary",
                severity=Severity.ERROR,
                message=(
                    f"'{_short(qualname)}' passes {record['hazard']} "
                    f"to .{record['method']}(); only module-level "
                    f"callables and plain data can cross the process "
                    f"boundary")), scenarios))
        if qualname in cert.digest_closure:
            _digest_scoped(findings, summary, scenarios)
    return findings


def _project_str_constants(project: Project) -> dict[str, str]:
    """qualname -> value for every module-level string constant."""
    table: dict[str, str] = {}
    for module in project.modules:
        for name, value in module.str_constants.items():
            table[f"{module.qualname}.{name}"] = value
    return table


def _scenario_scoped(
        findings: list[tuple[Violation, frozenset[str]]],
        summary: FunctionSummary, scenarios: frozenset[str],
        config: DistcheckConfig,
        str_constants: dict[str, str]) -> None:
    qualname = summary.qualname
    for record in summary.host_state:
        message = _host_state_message(qualname, record, config,
                                      str_constants)
        if message is None:
            continue
        findings.append((Violation(
            path=summary.path, line=record["line"], col=record["col"],
            rule_id="dist-host-state", severity=Severity.ERROR,
            message=message), scenarios))
    if not _matches(qualname, config.allow_globals):
        for record in summary.global_writes:
            findings.append((Violation(
                path=summary.path, line=record["line"],
                col=record["col"], rule_id="dist-mutable-global",
                severity=Severity.ERROR,
                message=(
                    f"'{_short(qualname)}' writes module-level state "
                    f"'{_short(record['name'])}' ({record['how']}); a "
                    f"remote worker's copy would diverge from the "
                    f"coordinator's")), scenarios))
    if not _matches(qualname, config.sanctioned_writers):
        for record in summary.fs_writes:
            findings.append((Violation(
                path=summary.path, line=record["line"],
                col=record["col"], rule_id="dist-filesystem-escape",
                severity=Severity.ERROR,
                message=(
                    f"'{_short(qualname)}' writes the filesystem via "
                    f"{record['what']}, outside the sanctioned "
                    f"artifact/journal APIs")), scenarios))


def _host_state_message(qualname: str, record: dict,
                        config: DistcheckConfig,
                        str_constants: dict[str, str]) -> str | None:
    kind = record["kind"]
    short = _short(qualname)
    if kind == "env":
        var = record.get("var")
        if var is None and record.get("ref"):
            var = str_constants.get(record["ref"])
        if var is not None and _matches(var, config.allow_env):
            return None
        if var is not None:
            return (f"'{short}' reads environment variable '{var}' "
                    f"outside the declared allow-env contract; a "
                    f"remote worker may see a different environment")
        return (f"'{short}' reads an environment variable through a "
                f"dynamic name ({record.get('expr')}); distcheck "
                f"cannot certify it against the allow-env contract")
    if kind == "cwd":
        return (f"'{short}' observes the host working directory via "
                f"{record['what']}(); resolve paths from explicit "
                f"parameters instead")
    if kind == "file":
        return (f"'{short}' reads __file__, anchoring behaviour to "
                f"the source checkout location on one host")
    if kind == "host-id":
        return (f"'{short}' reads host identity via "
                f"{record['what']}(); results would differ per host")
    if kind == "locale":
        return (f"'{short}' depends on process locale via "
                f"{record['what']}(); remote workers may be "
                f"configured differently")
    if kind == "process":
        return (f"'{short}' controls the worker process via "
                f"{record['what']}(); a remote point must return, "
                f"not exit")
    return None


def _digest_scoped(
        findings: list[tuple[Violation, frozenset[str]]],
        summary: FunctionSummary, scenarios: frozenset[str]) -> None:
    qualname = summary.qualname
    for record in summary.digest_hazards:
        findings.append((Violation(
            path=summary.path, line=record["line"], col=record["col"],
            rule_id="dist-digest-instability", severity=Severity.ERROR,
            message=(
                f"'{_short(qualname)}' uses {record['what']} on a "
                f"digest-feeding path; point digests must be "
                f"bit-identical across hosts")), scenarios))
    for record in summary.unordered_loops:
        findings.append((Violation(
            path=summary.path, line=record["line"], col=record["col"],
            rule_id="dist-digest-instability", severity=Severity.ERROR,
            message=(
                f"'{_short(qualname)}' iterates over {record['reason']} "
                f"on a digest-feeding path; canonical form must not "
                f"depend on iteration order")), scenarios))
