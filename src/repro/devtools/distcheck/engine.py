"""Distcheck orchestration: load -> reachability -> certification.

:func:`distcheck_paths` mirrors the analyze/detsan engines — same
project loader, incremental cache, pragma grammar, and reviewed
baseline — then folds the surviving findings into a per-scenario
certification verdict:

``certified``
    no findings anywhere in the scenario's reachability closure;
``baselined-findings``
    findings exist but every one is reviewed (pragma, ignore list,
    or baseline entry);
``failed``
    at least one unreviewed finding survives;
``refused``
    the scenario is listed in ``refuse-scenarios`` — deliberately
    outside the distributability contract (its findings are dropped,
    and a dispatcher must never ship its points off-host).

A finding attributed *only* to refused scenarios is dropped; one
shared with any certified scenario still gates.  Boundary and digest
findings with no scenario attribution are program-wide and are never
droppable.  The manifest renderer emits the machine-readable
``distcheck-manifest.json`` the future multi-host dispatcher checks
before shipping a point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.lintkit.core import (
    SYNTAX_ERROR_RULE_ID,
    Severity,
    Violation,
)
from repro.devtools.analyze.baseline import Baseline, load_baseline
from repro.devtools.analyze.cache import AnalysisCache
from repro.devtools.analyze.engine import (_apply_pragmas,
                                           _syntax_violations)
from repro.devtools.analyze.loader import Project, load_project
from repro.devtools.distcheck.config import DistcheckConfig
from repro.devtools.distcheck.rules import (DIST_RULES, CertificationMap,
                                            certification_map,
                                            distcheck_findings)

__all__ = ["DIST_RULES", "ScenarioCertification", "DistcheckReport",
           "distcheck_paths", "render_distcheck_text",
           "render_distcheck_json", "render_distcheck_sarif",
           "render_distcheck_manifest"]

#: Manifest schema version; bump on any change to the payload shape.
MANIFEST_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ScenarioCertification:
    """One scenario's distributability verdict."""

    name: str
    entry: str
    status: str  # certified | baselined-findings | failed | refused
    reachable: int = 0
    findings: int = 0  # unreviewed findings surviving all filters
    reviewed: int = 0  # findings removed by ignore/pragma/baseline


@dataclass
class DistcheckReport:
    """The outcome of one whole-program distributability analysis."""

    violations: list[Violation]
    certifications: list[ScenarioCertification]
    files_checked: int
    parsed: int = 0
    from_cache: int = 0
    suppressed: int = 0
    baselined: int = 0
    refused_findings: int = 0
    #: surviving violation -> attributed scenario names (may be empty)
    attribution: dict[int, frozenset[str]] = field(
        default_factory=dict, repr=False)
    project: Project | None = field(default=None, repr=False)

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations
                if v.severity >= Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def scenarios_for(self, violation: Violation) -> frozenset[str]:
        return self.attribution.get(id(violation), frozenset())


def distcheck_paths(paths: Iterable[str | Path],
                    config: DistcheckConfig | None = None,
                    *,
                    baseline: Baseline | None = None,
                    cache_path: str | Path | None = None,
                    use_cache: bool = True) -> DistcheckReport:
    """Run the distributability analysis and aggregate a report.

    ``baseline`` overrides the config's baseline file; ``cache_path``
    overrides the config's cache location; ``use_cache=False`` disables
    the incremental cache entirely (every module is re-parsed).
    """
    config = config or DistcheckConfig()
    cache: AnalysisCache | None = None
    if use_cache:
        location = cache_path if cache_path is not None else config.cache
        if location is not None:
            cache = AnalysisCache(location)
    project = load_project(paths, exclude=config.is_excluded, cache=cache)
    if cache is not None:
        cache.save()

    cert = certification_map(project, config)
    pairs = distcheck_findings(project, config, cert)

    refuse = set(config.refuse_scenarios)
    attribution: dict[int, frozenset[str]] = {}
    violations: list[Violation] = []
    refused_findings = 0
    for violation, scenarios in pairs:
        if scenarios and scenarios <= refuse:
            refused_findings += 1
            continue
        attribution[id(violation)] = scenarios
        violations.append(violation)
    violations = _syntax_violations(project) + violations

    # Findings present before review filters, per scenario: these
    # decide certified vs baselined-findings further down.
    pre_counts = _per_scenario_counts(violations, attribution)

    if config.ignore:
        ignored = set(config.ignore)
        violations = [v for v in violations if v.rule_id not in ignored]
    violations, suppressed = _apply_pragmas(project, violations)

    if baseline is None and config.baseline is not None:
        baseline = load_baseline(config.baseline)
    baselined = 0
    if baseline is not None:
        violations, baselined = baseline.filter(violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))

    surviving = _per_scenario_counts(violations, attribution)
    certifications = []
    for entry in sorted(cert.entries, key=lambda e: e.name):
        reachable = cert.closure_sizes.get(entry.name, 0)
        if entry.name in refuse:
            status = "refused"
            found = reviewed = 0
        else:
            found = surviving.get(entry.name, 0)
            reviewed = pre_counts.get(entry.name, 0) - found
            status = ("failed" if found
                      else "baselined-findings" if reviewed
                      else "certified")
        certifications.append(ScenarioCertification(
            name=entry.name, entry=entry.qualname, status=status,
            reachable=reachable, findings=found, reviewed=reviewed))

    return DistcheckReport(
        violations=violations,
        certifications=certifications,
        files_checked=project.files_checked,
        parsed=project.parsed,
        from_cache=project.from_cache,
        suppressed=suppressed,
        baselined=baselined,
        refused_findings=refused_findings,
        attribution={id(v): attribution.get(id(v), frozenset())
                     for v in violations},
        project=project,
    )


def _per_scenario_counts(violations: list[Violation],
                         attribution: dict[int, frozenset[str]]
                         ) -> dict[str, int]:
    counts: dict[str, int] = {}
    for violation in violations:
        for name in attribution.get(id(violation), frozenset()):
            counts[name] = counts.get(name, 0) + 1
    return counts


def render_distcheck_text(report: DistcheckReport) -> str:
    """Human-readable report: certification table plus the findings."""
    lines = [f"scenario certification "
             f"({len(report.certifications)} scenario(s)):"]
    for cert in report.certifications:
        if cert.status == "refused":
            detail = "(listed in refuse-scenarios)"
        else:
            detail = (f"({cert.reachable} reachable function(s), "
                      f"{cert.findings} finding(s), "
                      f"{cert.reviewed} reviewed)")
        lines.append(f"  {cert.name:<22} {cert.status:<20} {detail}")
    lines.append("")
    for violation in report.violations:
        lines.append(violation.render())
        scenarios = sorted(report.scenarios_for(violation))
        lines.append("    reached from: "
                     + (", ".join(scenarios) if scenarios
                        else "(program-wide)"))
    summary = (f"{report.files_checked} file(s) analyzed "
               f"({report.parsed} parsed, {report.from_cache} from "
               f"cache), {len(report.violations)} finding(s)")
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if report.refused_findings:
        extras.append(f"{report.refused_findings} on refused scenarios")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def render_distcheck_json(report: DistcheckReport) -> str:
    """Machine-readable report for tooling."""
    payload = {
        "files_checked": report.files_checked,
        "parsed": report.parsed,
        "from_cache": report.from_cache,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "refused_findings": report.refused_findings,
        "exit_code": report.exit_code,
        "scenarios": [
            {
                "name": cert.name,
                "entry": cert.entry,
                "status": cert.status,
                "reachable_functions": cert.reachable,
                "findings": cert.findings,
                "reviewed_findings": cert.reviewed,
            }
            for cert in report.certifications
        ],
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule_id,
                "severity": str(violation.severity),
                "message": violation.message,
                "scenarios": sorted(report.scenarios_for(violation)),
            }
            for violation in report.violations
        ],
    }
    return json.dumps(payload, indent=2)


def render_distcheck_sarif(report: DistcheckReport) -> str:
    """SARIF 2.1.0 document via the shared writer."""
    from repro.devtools.sarif import render_sarif

    rules = dict(DIST_RULES)
    rules[SYNTAX_ERROR_RULE_ID] = "file could not be parsed"
    return render_sarif(report.violations,
                        tool_name="urllc5g-distcheck", rules=rules,
                        information_uri="docs/ANALYSIS.md")


def render_distcheck_manifest(report: DistcheckReport) -> str:
    """The per-scenario certification manifest.

    The dispatcher contract: a point may only be shipped off-host when
    its scenario's status is ``certified`` or ``baselined-findings``.
    Deterministic (sorted keys, no timestamps) so the file is diffable
    and cacheable in CI artifacts.
    """
    from repro.devtools.sarif import TOOL_VERSION

    payload = {
        "tool": "urllc5g-distcheck",
        "tool_version": TOOL_VERSION,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "exit_code": report.exit_code,
        "scenarios": {
            cert.name: {
                "entry": cert.entry,
                "status": cert.status,
                "distributable": cert.status in (
                    "certified", "baselined-findings"),
                "reachable_functions": cert.reachable,
                "findings": cert.findings,
                "reviewed_findings": cert.reviewed,
            }
            for cert in report.certifications
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
