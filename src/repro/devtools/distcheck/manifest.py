"""Consumption side of ``distcheck-manifest.json``: the dispatch gate.

``urllc5g distcheck`` certifies every ``@scenario`` entry point and
writes the verdicts to a deterministic manifest
(:func:`repro.devtools.distcheck.engine.render_distcheck_manifest`).
This module is the *reader* the campaign dispatcher uses before
shipping a point to a remote worker: a scenario may leave the host
only when its manifest status is ``certified`` or
``baselined-findings``.  Everything else — ``failed``, ``refused``
(e.g. ``chaos-selftest``, which deliberately kills its own process),
or simply *absent from the manifest* — is refused, because an
uncertified scenario could smuggle host state, filesystem writes or
digest instability onto a fleet where nobody would notice.

The reader is deliberately strict: an unreadable file, a wrong
``schema_version`` or a malformed scenario table all raise
:class:`ManifestError` rather than degrade to "allow everything".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "DISTRIBUTABLE_STATUSES",
    "DistManifest",
    "ManifestError",
    "SUPPORTED_SCHEMA_VERSION",
    "ScenarioVerdict",
    "load_manifest",
]

#: Statuses that permit off-host execution (the dispatcher contract of
#: :func:`repro.devtools.distcheck.engine.render_distcheck_manifest`).
DISTRIBUTABLE_STATUSES = frozenset({"certified", "baselined-findings"})

#: The manifest schema this reader understands.
SUPPORTED_SCHEMA_VERSION = 1


class ManifestError(ValueError):
    """The manifest file is missing, unreadable or malformed."""


@dataclass(frozen=True)
class ScenarioVerdict:
    """One scenario's certification entry as read from the manifest."""

    name: str
    entry: str
    status: str

    @property
    def distributable(self) -> bool:
        """Whether the dispatcher may ship this scenario off-host."""
        return self.status in DISTRIBUTABLE_STATUSES


@dataclass(frozen=True)
class DistManifest:
    """A parsed, validated ``distcheck-manifest.json``."""

    path: str
    tool_version: str
    scenarios: Mapping[str, ScenarioVerdict]

    def verdict(self, scenario: str) -> ScenarioVerdict | None:
        """The manifest entry for ``scenario``, or None if absent."""
        return self.scenarios.get(scenario)

    def distributable(self, scenario: str) -> bool:
        """Whether ``scenario`` is certified for off-host execution.

        Absence is a refusal: a scenario the certifier has never seen
        carries no evidence it is safe to ship.
        """
        verdict = self.scenarios.get(scenario)
        return verdict is not None and verdict.distributable

    def refusals(self, scenarios: Iterable[str]) -> list[str]:
        """Human-readable refusal reasons, one per refused scenario.

        Empty when every scenario in ``scenarios`` is distributable —
        the dispatcher's go/no-go check.
        """
        reasons = []
        for name in sorted(set(scenarios)):
            verdict = self.scenarios.get(name)
            if verdict is None:
                reasons.append(
                    f"scenario {name!r} is absent from the distcheck "
                    f"manifest {self.path}; re-run `urllc5g distcheck` "
                    "to certify it")
            elif not verdict.distributable:
                reasons.append(
                    f"scenario {name!r} has manifest status "
                    f"{verdict.status!r}; only certified/"
                    "baselined-findings scenarios may leave the host")
        return reasons


def load_manifest(path: str | Path) -> DistManifest:
    """Read and validate a certification manifest.

    Raises :class:`ManifestError` on any defect — the dispatcher must
    fail closed, never fall back to "everything is distributable".
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ManifestError(
            f"cannot read distcheck manifest {path}: {exc}; run "
            "`urllc5g distcheck src/ --manifest "
            f"{path.name}` to generate it") from exc
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise ManifestError(
            f"distcheck manifest {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ManifestError(
            f"distcheck manifest {path} must be a JSON object")
    schema = payload.get("schema_version")
    if schema != SUPPORTED_SCHEMA_VERSION:
        raise ManifestError(
            f"distcheck manifest {path} has schema_version {schema!r}; "
            f"this reader understands {SUPPORTED_SCHEMA_VERSION}")
    table = payload.get("scenarios")
    if not isinstance(table, dict):
        raise ManifestError(
            f"distcheck manifest {path} has no 'scenarios' table")
    scenarios: dict[str, ScenarioVerdict] = {}
    for name, entry in table.items():
        if (not isinstance(name, str)
                or not isinstance(entry, dict)
                or not isinstance(entry.get("status"), str)):
            raise ManifestError(
                f"distcheck manifest {path} has a malformed entry "
                f"for {name!r}")
        scenarios[name] = ScenarioVerdict(
            name=name,
            entry=str(entry.get("entry", "")),
            status=entry["status"])
    return DistManifest(path=str(path),
                        tool_version=str(payload.get("tool_version",
                                                     "")),
                        scenarios=scenarios)
