"""Stream → consumer-component ownership map and the detsan rules.

Consumes the acquisition/buffer/escape records the project loader
extracts per module (:class:`repro.devtools.analyze.loader
._StreamWalker`) and the per-function draw sites, and produces

- the whole-program **ownership map**: every ``RngRegistry`` stream
  keyed by (registry scope, name template) with its resolved consumer
  components — the machine-checked spec behind the determinism
  contract in docs/PERFORMANCE.md;
- the five ``detsan-*`` violations (see :data:`DETSAN_RULES`).

The ordering dimension reuses the purity pass's fixpoint machinery:
functions that draw (directly or transitively) are *draw-tainted*, and
an unordered-collection loop whose body reaches a tainted callee is
reported — same lattice, new dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devtools.analyze.loader import Project
from repro.devtools.analyze.purity import (_chain, _propagate,
                                           _resolved_edges, _short)
from repro.devtools.lintkit.core import Severity, Violation

__all__ = ["DETSAN_RULES", "StreamInfo", "OwnershipMap",
           "stream_ownership", "detsan_violations"]

DETSAN_RULES = {
    "detsan-shared-stream":
        "A stream is consumed by more than one component without a "
        "declared '# detsan: shared' contract.",
    "detsan-unused-stream":
        "A stream is acquired but never drawn from (dead entropy or a "
        "wiring mistake).",
    "detsan-unresolved-stream":
        "A stream name is computed dynamically and cannot be resolved "
        "to a template; the ownership map cannot cover it.",
    "detsan-buffered-escape":
        "A generator claimed by a buffered sampler escapes to a second "
        "consumer, desynchronizing the pre-drawn block.",
    "detsan-unordered-draw":
        "RNG draws are reachable from unordered-collection iteration, "
        "so the draw order is not defined by the source.",
}


@dataclass
class StreamInfo:
    """One stream family in the ownership map."""

    scope: str
    template: str
    owners: list[str] = field(default_factory=list)
    sites: list[tuple[str, int]] = field(default_factory=list)
    buffered: bool = False
    shared: bool = False
    drawn: bool = False

    @property
    def key(self) -> tuple[str, str]:
        return (self.scope, self.template)


@dataclass
class OwnershipMap:
    """All streams plus resolution statistics."""

    streams: list[StreamInfo] = field(default_factory=list)
    acquisitions: int = 0
    resolved: int = 0

    @property
    def resolution_rate(self) -> float:
        if self.acquisitions == 0:
            return 1.0
        return self.resolved / self.acquisitions


def _canonical_owner(project: Project, candidate: str) -> str:
    """Resolve an owner candidate through re-export chains."""
    target = project.resolve_callable(candidate)
    if target is not None:
        qualname = target.qualname
        # A component class's __init__ is the class for ownership.
        return qualname[:-9] if qualname.endswith(".__init__") else qualname
    return candidate


def stream_ownership(project: Project) -> OwnershipMap:
    """Aggregate per-module acquisition records into the stream map."""
    by_key: dict[tuple[str, str], StreamInfo] = {}
    ownership = OwnershipMap()
    # Components whose code claims a generator for a buffered sampler:
    # a stream owned by such a component is buffered even though the
    # acquisition site (the wiring code) is in another module.
    claiming: set[str] = set()
    for module in project.modules:
        for buf in module.rng_buffers:
            claiming.add(buf["func"])
            claiming.add(buf["func"].rpartition(".")[0])
    for module in project.modules:
        for record in module.streams:
            ownership.acquisitions += 1
            if not record["resolved"]:
                continue
            ownership.resolved += 1
            key = (record["scope"], record["template"])
            info = by_key.get(key)
            if info is None:
                info = StreamInfo(scope=record["scope"],
                                  template=record["template"])
                by_key[key] = info
                ownership.streams.append(info)
            for candidate in record["owner"]:
                owner = _canonical_owner(project, candidate)
                if owner not in info.owners:
                    info.owners.append(owner)
            info.sites.append((module.path, record["line"]))
            info.buffered = info.buffered or record["buffered"]
            info.shared = info.shared or record["shared"]
            info.drawn = info.drawn or record["drawn"]
    for info in ownership.streams:
        if not info.buffered:
            info.buffered = any(owner in claiming for owner in info.owners)
    ownership.streams.sort(key=lambda info: (info.template, info.scope))
    return ownership


def _draw_tainted(project: Project) -> dict[str, tuple[str, str]]:
    """Fixpoint draw taint: functions that (transitively) draw."""
    edges_by_fn = {
        summary.qualname: _resolved_edges(project, summary)
        for summary in project.functions.values()}
    callees = {
        qualname: {target for _, resolved in edges for target in resolved}
        for qualname, edges in edges_by_fn.items()}
    direct = {
        qualname: (f"{summary.draws[0]['recv'] or '<expr>'}"
                   f".{summary.draws[0]['method']}")
        for qualname, summary in project.functions.items()
        if summary.draws}
    return _propagate(direct, callees)


def detsan_violations(project: Project
                      ) -> tuple[list[Violation], OwnershipMap]:
    """All five detsan rules over one loaded project."""
    ownership = stream_ownership(project)
    violations: list[Violation] = []

    # -- per-acquisition rules -----------------------------------------
    unused_kinds = {"discarded", "local", "attribute"}
    for module in project.modules:
        for record in module.streams:
            if not record["resolved"]:
                violations.append(Violation(
                    path=module.path, line=record["line"],
                    col=record["col"], rule_id="detsan-unresolved-stream",
                    severity=Severity.ERROR,
                    message=(f"stream name {record['arg']} in "
                             f"'{_short(record['func'])}' cannot be "
                             "resolved statically; use a literal or "
                             "f-string with a literal prefix so the "
                             "ownership map can cover it")))
                continue
            if record["uses"] == 0 and not record["drawn"] \
                    and record["owner_kind"] in unused_kinds:
                violations.append(Violation(
                    path=module.path, line=record["line"],
                    col=record["col"], rule_id="detsan-unused-stream",
                    severity=Severity.WARNING,
                    message=(f"stream '{record['template']}' is acquired "
                             f"in '{_short(record['func'])}' but never "
                             "drawn from; delete the acquisition or wire "
                             "it to its consumer")))
        for escape in module.rng_escapes:
            violations.append(Violation(
                path=module.path, line=escape["line"],
                col=escape["col"], rule_id="detsan-buffered-escape",
                severity=Severity.ERROR,
                message=(f"generator '{escape['stream_expr']}' is claimed "
                         f"by a {escape['buffer']} in "
                         f"'{_short(escape['func'])}' but {escape['detail']}"
                         "; a second consumer desynchronizes the "
                         "pre-drawn block from the scalar bit-stream")))

    # -- sharing across the aggregated map -----------------------------
    for info in ownership.streams:
        if len(info.owners) > 1 and not info.shared:
            path, line = info.sites[0]
            owners = ", ".join(f"'{_short(owner)}'"
                               for owner in info.owners)
            violations.append(Violation(
                path=path, line=line, col=0,
                rule_id="detsan-shared-stream",
                severity=Severity.ERROR,
                message=(f"stream '{info.template}' is consumed by "
                         f"{len(info.owners)} components ({owners}); "
                         "split it into per-component streams or declare "
                         "the contract with '# detsan: shared' on the "
                         "acquisition line")))

    # -- ordering dimension: draws under unordered iteration -----------
    tainted = _draw_tainted(project)
    for qualname, summary in project.functions.items():
        for loop in summary.unordered_loops:
            if loop.get("draws"):
                violations.append(Violation(
                    path=summary.path, line=loop["line"],
                    col=loop["col"], rule_id="detsan-unordered-draw",
                    severity=Severity.ERROR,
                    message=(f"'{_short(qualname)}' draws from an RNG "
                             f"inside iteration over {loop['reason']}; "
                             "iterate in sorted() order so the draw "
                             "sequence is defined by the source")))
                continue
            hit = None
            for candidate in loop["calls"]:
                target = project.resolve_function(candidate)
                if target is not None and target.qualname in tainted:
                    hit = target.qualname
                    break
            if hit is None:
                continue
            violations.append(Violation(
                path=summary.path, line=loop["line"], col=loop["col"],
                rule_id="detsan-unordered-draw",
                severity=Severity.ERROR,
                message=(f"'{_short(qualname)}' iterates over "
                         f"{loop['reason']} and calls '{_short(hit)}' "
                         f"which transitively draws "
                         f"({_chain(tainted, hit)}); iterate in "
                         "sorted() order so the draw sequence is "
                         "defined by the source")))

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations, ownership
