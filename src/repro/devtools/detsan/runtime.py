"""Dynamic-side helpers: replay verification over the sanitizer log.

The recording machinery itself lives in :mod:`repro.sim.sanitize`
(the simulation core cannot import devtools); this module adds the
devtools-side conveniences: running a workload twice under fresh
sanitizer sessions and diffing the per-stream draw logs, which is how
draw-count divergence between serial and parallel replays of the same
campaign point is detected.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.sanitize import (DeterminismViolation, SanitizeLog,
                                sanitizer_session)

__all__ = ["compare_draw_logs", "verify_replay"]


def compare_draw_logs(first: SanitizeLog, second: SanitizeLog
                      ) -> list[str]:
    """Human-readable divergences between two runs' draw logs.

    Compares per-stream draw counts and consumer sets; an empty list
    means the two replays consumed identical entropy from identical
    call sites.
    """
    divergences: list[str] = []
    counts_a = first.draw_counts()
    counts_b = second.draw_counts()
    for stream in sorted(set(counts_a) | set(counts_b)):
        a = counts_a.get(stream, 0)
        b = counts_b.get(stream, 0)
        if a != b:
            divergences.append(
                f"stream '{stream}': {a} draw(s) vs {b} draw(s)")
    consumers_a = first.consumer_map()
    consumers_b = second.consumer_map()
    for stream in sorted(set(consumers_a) | set(consumers_b)):
        a_set = set(consumers_a.get(stream, ()))
        b_set = set(consumers_b.get(stream, ()))
        if a_set != b_set:
            only_a = ", ".join(sorted(a_set - b_set)) or "-"
            only_b = ", ".join(sorted(b_set - a_set)) or "-"
            divergences.append(
                f"stream '{stream}': consumers differ "
                f"(only first: {only_a}; only second: {only_b})")
    return divergences


def verify_replay(run: Callable[[], Any], *,
                  label: str = "workload") -> tuple[Any, SanitizeLog]:
    """Run ``run`` twice under fresh sanitizer sessions and compare.

    Each invocation must construct its own registry/system (streams
    are wrapped at creation time).  Raises
    :exc:`~repro.sim.sanitize.DeterminismViolation` if the two replays
    diverge in results, per-stream draw counts, or consumer sets;
    otherwise returns the first result and its log.
    """
    with sanitizer_session() as first_log:
        first = run()
    with sanitizer_session() as second_log:
        second = run()
    divergences = compare_draw_logs(first_log, second_log)
    if first != second:
        divergences.insert(0, "results differ between replays")
    if divergences:
        raise DeterminismViolation(
            f"replay divergence in {label}: " + "; ".join(divergences))
    return first, first_log
