"""Static resolution of RNG stream-name expressions.

``RngRegistry.stream(name)`` takes a plain string, an f-string template
(``f"ue{ue_id}"``), or — in code detsan rejects — something computed at
runtime.  This module canonicalizes those expressions into *templates*:
literal text is kept, every interpolated hole becomes the placeholder
:data:`DYNAMIC`, so ``f"fault.{kind.value}.{index}"`` resolves to
``"fault.{*}.{*}"``.  A template is *resolved* when it has a literal
prefix — enough to identify the stream family for ownership analysis
and for prefix policies like the ``fault-streams-named`` lint rule.

Kept dependency-free (``ast`` only) so both the lint layer and the
analyze/detsan project passes can share it without import cycles.
"""

from __future__ import annotations

import ast

__all__ = [
    "DYNAMIC",
    "resolve_stream_name",
    "is_resolved",
    "is_stream_acquisition",
]

#: Placeholder substituted for every non-literal fragment of a name.
DYNAMIC = "{*}"

#: Registry method names whose first argument is a stream name.
STREAM_METHODS = frozenset({"stream"})


def resolve_stream_name(node: ast.expr) -> str | None:
    """Canonical template for a stream-name expression, or ``None``.

    Handles string constants, f-strings (holes become ``{*}``), and
    ``+`` concatenation of resolvable parts.  Returns ``None`` for
    expressions with no statically known fragment at all (bare names,
    function calls, ``%``/``.format`` formatting).
    """
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            elif isinstance(value, ast.FormattedValue):
                parts.append(DYNAMIC)
            else:  # pragma: no cover - no other node kinds today
                parts.append(DYNAMIC)
        template = "".join(parts)
        return template if template.replace(DYNAMIC, "") else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = resolve_stream_name(node.left)
        right = resolve_stream_name(node.right)
        if left is None and right is None:
            return None
        return (left or DYNAMIC) + (right or DYNAMIC)
    return None


def is_resolved(template: str | None) -> bool:
    """Whether a template identifies its stream family statically.

    Requires a literal (non-placeholder) prefix: ``"fault.{*}.{*}"``
    is resolved, ``"{*}.jitter"`` is not — without the leading literal
    the ownership map cannot tell which family the stream joins.
    """
    return (template is not None and template != ""
            and not template.startswith(DYNAMIC))


def is_stream_acquisition(node: ast.Call) -> bool:
    """Whether a call is shaped like ``<registry>.stream(name)``.

    Purely syntactic; callers decide whether the receiver is actually
    an ``RngRegistry`` (see the loader's receiver heuristics).
    """
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr in STREAM_METHODS
            and bool(node.args))
