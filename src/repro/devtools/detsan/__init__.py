"""DetSan: two-sided determinism checking for RNG stream ownership.

The determinism contract says every ``RngRegistry`` stream has exactly
one well-ordered consumer (docs/PERFORMANCE.md).  This package checks
it from both sides:

- **Static** (:mod:`.engine`, :mod:`.ownership`, :mod:`.resolver`):
  a whole-program pass over the analyze project model that resolves
  every stream-name literal/template, computes the stream → component
  ownership map, and reports sharing, dead streams, unresolvable
  names, buffered-stream escapes, and draws reachable from unordered
  iteration.  Run it with ``urllc5g detsan``.
- **Dynamic** (:mod:`repro.sim.sanitize`, re-exported here, plus
  :mod:`.runtime`): ``URLLC5G_SANITIZE=1`` wraps vended generators in
  recording proxies that enforce exclusive claims at runtime and stay
  bit-identical to unsanitized runs.
"""

from repro.sim.sanitize import (DeterminismViolation, RecordingGenerator,
                                SanitizeLog, sanitize_active,
                                sanitizer_session)
from repro.devtools.detsan.config import DetsanConfig, load_detsan_config
from repro.devtools.detsan.engine import (DETSAN_RULES, DetsanReport,
                                          detsan_paths, render_detsan_dot,
                                          render_detsan_json,
                                          render_detsan_sarif,
                                          render_detsan_text)
from repro.devtools.detsan.ownership import (OwnershipMap, StreamInfo,
                                             stream_ownership)
from repro.devtools.detsan.resolver import (DYNAMIC, is_resolved,
                                            resolve_stream_name)
from repro.devtools.detsan.runtime import compare_draw_logs, verify_replay

__all__ = [
    "DETSAN_RULES",
    "DYNAMIC",
    "DeterminismViolation",
    "DetsanConfig",
    "DetsanReport",
    "OwnershipMap",
    "RecordingGenerator",
    "SanitizeLog",
    "StreamInfo",
    "compare_draw_logs",
    "detsan_paths",
    "is_resolved",
    "load_detsan_config",
    "render_detsan_dot",
    "render_detsan_json",
    "render_detsan_sarif",
    "render_detsan_text",
    "resolve_stream_name",
    "sanitize_active",
    "sanitizer_session",
    "stream_ownership",
    "verify_replay",
]
