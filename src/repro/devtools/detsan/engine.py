"""DetSan orchestration: load -> ownership map -> report.

:func:`detsan_paths` mirrors :func:`repro.devtools.analyze.engine
.analyze_paths` — same project loader, same incremental cache, same
baseline and pragma machinery — but runs the stream-ownership rules
and carries the ownership map in its report.  ``# analyze:
disable=detsan-*`` pragmas work unchanged (one pragma grammar for
both project passes); sharing contracts are declared with
``# detsan: shared`` on the acquisition line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.lintkit.core import (
    SYNTAX_ERROR_RULE_ID,
    Severity,
    Violation,
)
from repro.devtools.analyze.baseline import Baseline, load_baseline
from repro.devtools.analyze.cache import AnalysisCache
from repro.devtools.analyze.engine import (_apply_pragmas,
                                           _syntax_violations)
from repro.devtools.analyze.loader import Project, load_project
from repro.devtools.detsan.config import DetsanConfig
from repro.devtools.detsan.ownership import (DETSAN_RULES, OwnershipMap,
                                             detsan_violations)

__all__ = ["DETSAN_RULES", "DetsanReport", "detsan_paths",
           "render_detsan_text", "render_detsan_json",
           "render_detsan_sarif", "render_detsan_dot"]


@dataclass
class DetsanReport:
    """The outcome of one whole-program determinism analysis."""

    violations: list[Violation]
    ownership: OwnershipMap
    files_checked: int
    parsed: int = 0
    from_cache: int = 0
    suppressed: int = 0
    baselined: int = 0
    project: Project | None = field(default=None, repr=False)

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations
                if v.severity >= Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def detsan_paths(paths: Iterable[str | Path],
                 config: DetsanConfig | None = None,
                 *,
                 baseline: Baseline | None = None,
                 cache_path: str | Path | None = None,
                 use_cache: bool = True) -> DetsanReport:
    """Run the determinism analysis and aggregate a report.

    ``baseline`` overrides the config's baseline file; ``cache_path``
    overrides the config's cache location; ``use_cache=False`` disables
    the incremental cache entirely (every module is re-parsed).
    """
    config = config or DetsanConfig()
    cache: AnalysisCache | None = None
    if use_cache:
        location = cache_path if cache_path is not None else config.cache
        if location is not None:
            cache = AnalysisCache(location)
    project = load_project(paths, exclude=config.is_excluded, cache=cache)
    if cache is not None:
        cache.save()

    violations, ownership = detsan_violations(project)
    violations = _syntax_violations(project) + violations
    if config.ignore:
        ignored = set(config.ignore)
        violations = [v for v in violations if v.rule_id not in ignored]
    violations, suppressed = _apply_pragmas(project, violations)

    if baseline is None and config.baseline is not None:
        baseline = load_baseline(config.baseline)
    baselined = 0
    if baseline is not None:
        violations, baselined = baseline.filter(violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return DetsanReport(
        violations=violations,
        ownership=ownership,
        files_checked=project.files_checked,
        parsed=project.parsed,
        from_cache=project.from_cache,
        suppressed=suppressed,
        baselined=baselined,
        project=project,
    )


def _scope_label(scope: str) -> str:
    """Short display form of a registry-scope key."""
    head = scope.split(":")[0]
    parts = head.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else head


def render_detsan_text(report: DetsanReport) -> str:
    """Human-readable report: the ownership map plus the findings."""
    ownership = report.ownership
    lines = ["stream ownership map "
             f"({len(ownership.streams)} stream(s), "
             f"{ownership.resolved}/{ownership.acquisitions} "
             "acquisition(s) resolved):"]
    for info in ownership.streams:
        flags = "".join((
            " [buffered]" if info.buffered else "",
            " [shared]" if info.shared else "",
        ))
        owners = ", ".join(info.owners) or "(unconsumed)"
        lines.append(f"  {info.template:<20} -> {owners}{flags}  "
                     f"(scope {_scope_label(info.scope)})")
    lines.append("")
    lines.extend(violation.render() for violation in report.violations)
    summary = (f"{report.files_checked} file(s) analyzed "
               f"({report.parsed} parsed, {report.from_cache} from "
               f"cache), {len(report.violations)} finding(s)")
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def render_detsan_json(report: DetsanReport) -> str:
    """Machine-readable report for tooling."""
    payload = {
        "files_checked": report.files_checked,
        "parsed": report.parsed,
        "from_cache": report.from_cache,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "exit_code": report.exit_code,
        "resolution": {
            "acquisitions": report.ownership.acquisitions,
            "resolved": report.ownership.resolved,
            "rate": report.ownership.resolution_rate,
        },
        "streams": [
            {
                "template": info.template,
                "scope": info.scope,
                "owners": info.owners,
                "sites": [f"{path}:{line}" for path, line in info.sites],
                "buffered": info.buffered,
                "shared": info.shared,
            }
            for info in report.ownership.streams
        ],
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule_id,
                "severity": str(violation.severity),
                "message": violation.message,
            }
            for violation in report.violations
        ],
    }
    return json.dumps(payload, indent=2)


def render_detsan_sarif(report: DetsanReport) -> str:
    """SARIF 2.1.0 document via the shared writer."""
    from repro.devtools.sarif import render_sarif

    rules = dict(DETSAN_RULES)
    rules[SYNTAX_ERROR_RULE_ID] = "file could not be parsed"
    return render_sarif(report.violations, tool_name="urllc5g-detsan",
                        rules=rules,
                        information_uri="docs/ANALYSIS.md")


def render_detsan_dot(report: DetsanReport) -> str:
    """The ownership graph in Graphviz dot, for docs.

    Stream nodes are ellipses (doubled border when a buffered sampler
    claims the stream exclusively), consumer components are boxes, and
    an edge means "this component draws from this stream".  Output is
    deterministic so the generated graph can live in version control.
    """
    lines = [
        "// Generated by `urllc5g detsan --format dot`.",
        "digraph stream_ownership {",
        "  rankdir=LR;",
        '  node [fontname="Helvetica", fontsize=11];',
        '  edge [fontname="Helvetica", fontsize=9];',
    ]
    owners: dict[str, str] = {}
    for index, info in enumerate(report.ownership.streams):
        stream_id = f"stream_{index}"
        style = ["shape=ellipse"]
        if info.buffered:
            style.append("peripheries=2")
        if info.shared:
            style.append('style=dashed')
        label = info.template
        scope = _scope_label(info.scope)
        lines.append(f'  {stream_id} [label="{label}\\n({scope})", '
                     f'{", ".join(style)}];')
        for owner in info.owners:
            owner_id = owners.get(owner)
            if owner_id is None:
                owner_id = f"owner_{len(owners)}"
                owners[owner] = owner_id
                short = ".".join(owner.split(".")[-2:])
                lines.append(f'  {owner_id} [label="{short}", '
                             'shape=box];')
            attrs = []
            if info.buffered:
                attrs.append('label="buffered"')
            lines.append(f"  {stream_id} -> {owner_id}"
                         + (f" [{', '.join(attrs)}]" if attrs else "")
                         + ";")
    lines.append("}")
    return "\n".join(lines) + "\n"
