"""Load detsan configuration from ``pyproject.toml``.

The ``[tool.urllc5g.detsan]`` table mirrors the analyze one::

    [tool.urllc5g.detsan]
    ignore = []                       # detsan rule ids disabled
    exclude = ["*/fixtures/*"]        # path globs never analyzed
    baseline = "detsan-baseline.json" # reviewed accepted findings
    cache = ".urllc5g-analyze-cache.json"

The cache may (and by default does) point at the analyze cache file:
both passes consume the same versioned module summaries, so one parse
serves both.  Per-line sharing contracts use ``# detsan: shared``;
the baseline file is the reviewed mechanism for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lintkit.core import _glob_match
from repro.devtools.lintkit.config import find_pyproject

try:
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]

__all__ = ["DetsanConfig", "load_detsan_config"]


@dataclass
class DetsanConfig:
    """Which detsan rules run where; see ``[tool.urllc5g.detsan]``."""

    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str | None = None
    cache: str | None = None
    _extra_excludes: tuple[str, ...] = field(default=(), repr=False)

    def is_excluded(self, path: str) -> bool:
        patterns = self.exclude + self._extra_excludes
        return any(_glob_match(path, pattern) for pattern in patterns)


def load_detsan_config(pyproject: str | Path | None = None,
                       start: str | Path = ".") -> DetsanConfig:
    """Build a :class:`DetsanConfig` from the nearest pyproject.

    Missing file, missing table, or a pre-3.11 interpreter all yield
    the default config.
    """
    if tomllib is None:  # pragma: no cover - Python 3.10 fallback
        return DetsanConfig()
    path = Path(pyproject) if pyproject is not None else (
        find_pyproject(start))
    if path is None or not path.is_file():
        return DetsanConfig()
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("urllc5g", {}).get("detsan", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.urllc5g.detsan] must be a table")
    baseline = table.get("baseline")
    cache = table.get("cache")
    for key, value in (("baseline", baseline), ("cache", cache)):
        if value is not None and not isinstance(value, str):
            raise ValueError(
                f"[tool.urllc5g.detsan] {key} must be a string")
    # Relative baseline/cache paths are anchored at the pyproject's
    # directory, so `--config /elsewhere/pyproject.toml` honors the
    # reviewed baseline no matter the invocation cwd.
    anchor = path.parent
    if baseline is not None:
        baseline = str(anchor / baseline)
    if cache is not None:
        cache = str(anchor / cache)
    return DetsanConfig(
        ignore=tuple(_as_str_list(table.get("ignore", []), "ignore")),
        exclude=tuple(_as_str_list(table.get("exclude", []), "exclude")),
        baseline=baseline,
        cache=cache,
    )


def _as_str_list(value: object, key: str) -> list[str]:
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise ValueError(
            f"[tool.urllc5g.detsan] {key} must be a list of strings")
    return value
