"""The lint engine: rule registry, suppressions, file walking.

A :class:`Rule` inspects one parsed module and yields
:class:`Violation` objects.  Rules register themselves with
:func:`register` so the CLI and tests discover them by id; severity is
per-rule but can be overridden from configuration.

Suppressions are explicit and line-scoped::

    t0 = time.time()   # lint: disable=no-wall-clock

A whole file can opt out of one rule with a top-of-file pragma
(``# lint: disable-file=RULE``), but the reviewed baseline for the
repository lives in ``pyproject.toml`` (``[tool.urllc5g.lint]``), not
in scattered comments — see docs/LINTING.md.
"""

from __future__ import annotations

import ast
import enum
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.walker import iter_python_files

__all__ = [
    "Severity",
    "SYNTAX_ERROR_RULE_ID",
    "Violation",
    "ModuleUnderLint",
    "Rule",
    "register",
    "registered_rules",
    "LintConfig",
    "LintReport",
    "lint_paths",
    "lint_source",
]


class Severity(str, enum.Enum):
    """Violation severities, ordered ``NOTE < WARNING < ERROR``.

    A ``str`` subclass so existing code (and configuration files) can
    keep comparing against the plain strings ``"error"``/``"warning"``;
    ordering comparisons rank by severity, not lexicographically, so
    ``lint`` and ``analyze`` share one "is this at least a warning?"
    predicate.  ``ERROR`` fails the build, the others do not.
    """

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    # A str-mixin enum would otherwise render as "Severity.ERROR" on
    # some interpreter versions; reports need the bare value.
    __str__ = str.__str__
    __format__ = str.__format__

    @property
    def rank(self) -> int:
        return _SEVERITY_RANKS[self.value]

    def _coerced_rank(self, other: object) -> int | None:
        if isinstance(other, Severity):
            return other.rank
        if isinstance(other, str) and other in _SEVERITY_RANKS:
            return _SEVERITY_RANKS[other]
        return None

    def __lt__(self, other: object) -> bool:
        rank = self._coerced_rank(other)
        if rank is None:
            return NotImplemented
        return self.rank < rank

    def __le__(self, other: object) -> bool:
        rank = self._coerced_rank(other)
        if rank is None:
            return NotImplemented
        return self.rank <= rank

    def __gt__(self, other: object) -> bool:
        rank = self._coerced_rank(other)
        if rank is None:
            return NotImplemented
        return self.rank > rank

    def __ge__(self, other: object) -> bool:
        rank = self._coerced_rank(other)
        if rank is None:
            return NotImplemented
        return self.rank >= rank


_SEVERITY_RANKS = {"note": 0, "warning": 1, "error": 2}

#: Pseudo-rule id under which unparseable files are reported.
SYNTAX_ERROR_RULE_ID = "syntax-error"


@dataclass(frozen=True)
class Violation:
    """One finding, anchored to a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity}[{self.rule_id}] {self.message}")


_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*lint:\s*disable-file=([A-Za-z0-9_,\- ]+)")


@dataclass
class ModuleUnderLint:
    """A parsed module plus the source context rules may need."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def is_package_init(self) -> bool:
        return Path(self.path).name == "__init__.py"

    def suppressed_rules_on_line(self, line: int) -> set[str]:
        """Rule ids disabled on ``line`` via an inline pragma."""
        if 1 <= line <= len(self.lines):
            match = _SUPPRESS_RE.search(self.lines[line - 1])
            if match:
                return {r.strip() for r in match.group(1).split(",")}
        return set()

    def file_suppressed_rules(self) -> set[str]:
        """Rule ids disabled for the whole file via pragmas."""
        rules: set[str] = set()
        for line in self.lines:
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                rules.update(r.strip() for r in match.group(1).split(","))
        return rules


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`severity` and
    :attr:`description`, and implement :meth:`check`.
    """

    rule_id: str = ""
    severity: str = Severity.ERROR
    description: str = ""

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: ModuleUnderLint, node: ast.AST,
                  message: str, severity: str | None = None) -> Violation:
        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} lacks a rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id!r}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def registered_rules() -> dict[str, type[Rule]]:
    """All registered rules, keyed by id (import side-effect of rules.py)."""
    from repro.devtools.lintkit import rules as _rules  # noqa: F401
    return dict(_REGISTRY)


@dataclass
class LintConfig:
    """Which rules run where; see ``[tool.urllc5g.lint]``.

    - ``select``: run only these rule ids (empty = all registered);
    - ``ignore``: rule ids disabled everywhere;
    - ``exclude``: path glob patterns never linted;
    - ``per_path``: mapping of path glob -> rule ids disabled there —
      the reviewed suppression baseline;
    - ``severity_overrides``: rule id -> severity.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    per_path: dict[str, tuple[str, ...]] = field(default_factory=dict)
    severity_overrides: dict[str, str] = field(default_factory=dict)

    def active_rules(self) -> list[Rule]:
        rules = registered_rules()
        unknown = (set(self.select) | set(self.ignore)
                   | set(self.severity_overrides)) - set(rules)
        for patterns in self.per_path.values():
            unknown |= set(patterns) - set(rules)
        if unknown:
            raise ValueError(
                f"unknown rule id(s) in lint config: {sorted(unknown)}")
        wanted = self.select or tuple(sorted(rules))
        active = []
        for rule_id in wanted:
            if rule_id in self.ignore:
                continue
            rule = rules[rule_id]()
            override = self.severity_overrides.get(rule_id)
            if override is not None:
                try:
                    rule.severity = Severity(override)
                except ValueError:
                    raise ValueError(
                        f"invalid severity {override!r} for rule "
                        f"{rule_id!r}; expected one of "
                        f"{sorted(_SEVERITY_RANKS)}") from None
            active.append(rule)
        return active

    def is_excluded(self, path: str) -> bool:
        return any(_glob_match(path, pattern) for pattern in self.exclude)

    def rules_disabled_for(self, path: str) -> set[str]:
        disabled: set[str] = set()
        for pattern, rule_ids in self.per_path.items():
            if _glob_match(path, pattern):
                disabled.update(rule_ids)
        return disabled


def _glob_match(path: str, pattern: str) -> bool:
    """Match ``pattern`` against the path or any of its suffix segments.

    ``"sim/rng.py"`` matches ``src/repro/sim/rng.py`` so config entries
    stay stable when the tree is linted from a different root.
    """
    normalized = Path(path).as_posix()
    if fnmatch.fnmatch(normalized, pattern):
        return True
    parts = normalized.split("/")
    return any(fnmatch.fnmatch("/".join(parts[i:]), pattern)
               for i in range(len(parts)))


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: list[Violation]
    files_checked: int
    suppressed: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations
                if v.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations
                if v.severity == Severity.WARNING]

    @property
    def exit_code(self) -> int:
        return 1 if (self.errors or self.parse_errors) else 0


def lint_source(source: str, path: str, rules: Iterable[Rule],
                disabled: set[str] | None = None
                ) -> tuple[list[Violation], int]:
    """Lint one in-memory module.  Returns (violations, suppressed)."""
    tree = ast.parse(source, filename=path)
    module = ModuleUnderLint(path=path, source=source, tree=tree)
    disabled = disabled or set()
    file_off = module.file_suppressed_rules() | disabled
    kept: list[Violation] = []
    suppressed = 0
    for rule in rules:
        if rule.rule_id in file_off:
            continue
        for violation in rule.check(module):
            pragmas = module.suppressed_rules_on_line(violation.line)
            if rule.rule_id in pragmas or "all" in pragmas:
                suppressed += 1
                continue
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return kept, suppressed


def _syntax_error_violation(path: str, exc: Exception) -> Violation:
    """An ERROR-severity finding for a file that could not be parsed."""
    line = 1
    col = 0
    message = str(exc)
    if isinstance(exc, SyntaxError):
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        message = exc.msg or "invalid syntax"
    return Violation(path=path, line=line, col=max(col, 0),
                     rule_id=SYNTAX_ERROR_RULE_ID,
                     severity=Severity.ERROR,
                     message=f"could not parse file: {message}")


def lint_paths(paths: Iterable[str | Path],
               config: LintConfig | None = None) -> LintReport:
    """Lint files/directories and aggregate a :class:`LintReport`."""
    config = config or LintConfig()
    rules = config.active_rules()
    violations: list[Violation] = []
    parse_errors: list[str] = []
    files_checked = 0
    suppressed_total = 0
    for path in iter_python_files(paths):
        path_str = path.as_posix()
        if config.is_excluded(path_str):
            continue
        files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
            found, suppressed = lint_source(
                source, path_str, rules,
                disabled=config.rules_disabled_for(path_str))
        # ast.parse raises SyntaxError for malformed code but ValueError
        # for e.g. null bytes; a broken file must surface as an ERROR
        # finding for that file, never abort the whole run.
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            violations.append(_syntax_error_violation(path_str, exc))
            continue
        violations.extend(found)
        suppressed_total += suppressed
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return LintReport(violations=violations, files_checked=files_checked,
                      suppressed=suppressed_total,
                      parse_errors=parse_errors)
