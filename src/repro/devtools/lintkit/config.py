"""Load lint configuration from ``pyproject.toml``.

The ``[tool.urllc5g.lint]`` table controls rule selection and the
reviewed suppression baseline::

    [tool.urllc5g.lint]
    select = []                 # empty = every registered rule
    ignore = []
    exclude = ["build/*"]

    [tool.urllc5g.lint.per-path]
    "sim/rng.py" = ["rng-discipline"]

    [tool.urllc5g.lint.severity]
    "public-api-exports" = "warning"

``tomllib`` ships with Python 3.11+; on older interpreters (the project
floor is 3.10) configuration silently falls back to defaults rather
than pulling in a third-party TOML parser.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lintkit.core import LintConfig

try:
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]

__all__ = ["load_config", "find_pyproject"]


def find_pyproject(start: str | Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(pyproject: str | Path | None = None,
                start: str | Path = ".") -> LintConfig:
    """Build a :class:`LintConfig` from the nearest ``pyproject.toml``.

    Missing file, missing table, or a pre-3.11 interpreter all yield
    the default config (every rule, no excludes).
    """
    if tomllib is None:  # pragma: no cover - Python 3.10 fallback
        return LintConfig()
    path = Path(pyproject) if pyproject is not None else (
        find_pyproject(start))
    if path is None or not path.is_file():
        return LintConfig()
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("urllc5g", {}).get("lint", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.urllc5g.lint] must be a table")
    per_path_raw = table.get("per-path", {})
    per_path = {pattern: tuple(_as_str_list(rules, f"per-path.{pattern}"))
                for pattern, rules in per_path_raw.items()}
    severity = table.get("severity", {})
    if not all(isinstance(v, str) for v in severity.values()):
        raise ValueError("[tool.urllc5g.lint.severity] values must be "
                         "severity strings")
    return LintConfig(
        select=tuple(_as_str_list(table.get("select", []), "select")),
        ignore=tuple(_as_str_list(table.get("ignore", []), "ignore")),
        exclude=tuple(_as_str_list(table.get("exclude", []), "exclude")),
        per_path=per_path,
        severity_overrides=dict(severity),
    )


def _as_str_list(value: object, key: str) -> list[str]:
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise ValueError(
            f"[tool.urllc5g.lint] {key} must be a list of strings")
    return value
