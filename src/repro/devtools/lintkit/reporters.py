"""Render a :class:`~repro.devtools.lintkit.core.LintReport`.

Two formats: ``text`` for humans/CI logs, ``json`` for tooling.  Both
are pure functions of the report so tests can assert on them directly.
"""

from __future__ import annotations

import json

from repro.devtools.lintkit.core import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport, verbose: bool = False) -> str:
    """One line per violation plus a summary footer."""
    lines = [v.render() for v in report.violations]
    lines.extend(f"{path_error}: could not parse"
                 for path_error in report.parse_errors)
    n_err = len(report.errors)
    n_warn = len(report.warnings)
    summary = (f"{report.files_checked} file(s) checked: "
               f"{n_err} error(s), {n_warn} warning(s)")
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if not report.violations and not report.parse_errors:
        summary += " — clean"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_checked": report.files_checked,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "suppressed": report.suppressed,
        "parse_errors": list(report.parse_errors),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "severity": v.severity,
                "message": v.message,
            }
            for v in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
