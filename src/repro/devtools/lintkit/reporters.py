"""Render a :class:`~repro.devtools.lintkit.core.LintReport`.

Three formats: ``text`` for humans/CI logs, ``json`` for tooling, and
``sarif`` (via the shared :mod:`repro.devtools.sarif` writer) for code
scanning UIs.  All are pure functions of the report so tests can
assert on them directly.
"""

from __future__ import annotations

import json

from repro.devtools.lintkit.core import (
    SYNTAX_ERROR_RULE_ID,
    LintReport,
    registered_rules,
)

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(report: LintReport, verbose: bool = False) -> str:
    """One line per violation plus a summary footer."""
    lines = [v.render() for v in report.violations]
    lines.extend(f"{path_error}: could not parse"
                 for path_error in report.parse_errors)
    n_err = len(report.errors)
    n_warn = len(report.warnings)
    summary = (f"{report.files_checked} file(s) checked: "
               f"{n_err} error(s), {n_warn} warning(s)")
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if not report.violations and not report.parse_errors:
        summary += " — clean"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_checked": report.files_checked,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "suppressed": report.suppressed,
        "parse_errors": list(report.parse_errors),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "severity": v.severity,
                "message": v.message,
            }
            for v in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 document listing every registered rule."""
    from repro.devtools.sarif import render_sarif as _render

    rules = {SYNTAX_ERROR_RULE_ID: "file could not be parsed"}
    severities = {SYNTAX_ERROR_RULE_ID: "error"}
    for rule_id, rule_cls in registered_rules().items():
        rules[rule_id] = rule_cls.description
        severities[rule_id] = str(rule_cls.severity)
    return _render(report.violations, tool_name="urllc5g-lint",
                   rules=rules, rule_severities=severities,
                   information_uri="docs/LINTING.md")
