"""``urllc5g lint`` — AST static analysis for simulation invariants.

The framework (:mod:`.core`) walks Python sources, runs every
registered :class:`Rule`, honours ``# lint: disable=RULE`` pragmas and
the ``[tool.urllc5g.lint]`` baseline, and reports through
:mod:`.reporters`.  The domain rules live in :mod:`.rules`; importing
this package registers them all.
"""

from repro.devtools.lintkit.config import find_pyproject, load_config
from repro.devtools.lintkit.core import (
    SYNTAX_ERROR_RULE_ID,
    LintConfig,
    LintReport,
    ModuleUnderLint,
    Rule,
    Severity,
    Violation,
    lint_paths,
    lint_source,
    register,
    registered_rules,
)
from repro.devtools.lintkit.reporters import (
    render_json,
    render_sarif,
    render_text,
)
from repro.devtools.lintkit import rules  # noqa: F401  (registers rules)

__all__ = [
    "LintConfig",
    "LintReport",
    "ModuleUnderLint",
    "Rule",
    "SYNTAX_ERROR_RULE_ID",
    "Severity",
    "Violation",
    "find_pyproject",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rules",
]
