"""The domain rules behind ``urllc5g lint``.

Each rule encodes one invariant the paper's results depend on; see
docs/LINTING.md for worked examples and the suppression syntax.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lintkit.core import (
    ModuleUnderLint,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = [
    "NoWallClockRule",
    "RngDisciplineRule",
    "UnitSuffixMixingRule",
    "NoFloatTickEqualityRule",
    "UnorderedIterationBeforeScheduleRule",
    "PublicApiExportsRule",
    "FaultStreamsNamedRule",
]

#: Time units carried as name suffixes across the codebase.  ``tc`` is
#: the only integer unit (NR basic time unit, TS 38.211); the rest are
#: physical floats.
TIME_SUFFIXES = ("tc", "us", "ms", "ns")
FLOAT_TIME_SUFFIXES = ("us", "ms", "ns")


def _name_suffix(name: str) -> str | None:
    """The trailing time-unit suffix of ``name``, if any."""
    stem, _, tail = name.rpartition("_")
    if stem and tail in TIME_SUFFIXES:
        return tail
    return None


def _expr_unit(node: ast.expr) -> str | None:
    """Best-effort time unit of an expression.

    Names and attributes carry their suffix (``delay_us`` -> ``us``);
    calls carry the suffix of the *called* name, so a conversion such as
    ``tc_from_us(x_us)`` has unit ``tc`` and mixing it into tick
    arithmetic is fine.  Unary ops are transparent.
    """
    if isinstance(node, ast.UnaryOp):
        return _expr_unit(node.operand)
    if isinstance(node, ast.Name):
        return _name_suffix(node.id)
    if isinstance(node, ast.Attribute):
        return _name_suffix(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        # Conversion helpers are named <target>_from_<source>
        # (tc_from_us, ms_from_tc, ...): the call's unit is the target.
        target, sep, _ = name.partition("_from_")
        if sep and target in TIME_SUFFIXES:
            return target
        return _name_suffix(name)
    return None


def _dotted(node: ast.expr) -> str | None:
    """Render an attribute chain like ``np.random.seed`` as a string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTracker(ast.NodeVisitor):
    """Maps local aliases back to the modules they name."""

    def __init__(self) -> None:
        self.module_aliases: dict[str, str] = {}   # alias -> module
        self.member_imports: dict[str, str] = {}   # alias -> module.member

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            self.member_imports[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}")


@register
class NoWallClockRule(Rule):
    """Simulated time is the only clock: wall-clock reads are banned.

    ``time.time()``, ``time.perf_counter()``, ``datetime.now()`` and
    friends make behaviour depend on the host, which breaks
    bit-reproducibility of every latency figure.  Use
    ``Simulator.now`` (Tc ticks) and :mod:`repro.phy.timebase`.
    """

    rule_id = "no-wall-clock"
    severity = Severity.ERROR
    description = ("wall-clock reads (time.time, perf_counter, "
                   "datetime.now, ...) are banned in simulation code")

    _TIME_FUNCS = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    })
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        imports = _ImportTracker()
        imports.visit(module.tree)
        time_aliases = {alias for alias, mod in
                        imports.module_aliases.items() if mod == "time"}
        datetime_mod_aliases = {
            alias for alias, mod in imports.module_aliases.items()
            if mod == "datetime"}
        datetime_cls_aliases = {
            alias for alias, target in imports.member_imports.items()
            if target in ("datetime.datetime", "datetime.date")}
        banned_members = {
            alias for alias, target in imports.member_imports.items()
            if target in {f"time.{f}" for f in self._TIME_FUNCS}}

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in banned_members:
                yield self.violation(
                    module, node,
                    f"wall-clock call {func.id}(); simulated components "
                    "must read Simulator.now (Tc ticks) instead")
            elif isinstance(func, ast.Attribute):
                dotted = _dotted(func)
                if dotted is None:
                    continue
                head, _, tail = dotted.partition(".")
                if head in time_aliases and tail in self._TIME_FUNCS:
                    yield self.violation(
                        module, node,
                        f"wall-clock call {dotted}(); simulated "
                        "components must read Simulator.now instead")
                elif (tail.split(".")[-1] in self._DATETIME_FUNCS
                      and (head in datetime_mod_aliases
                           or head in datetime_cls_aliases)):
                    yield self.violation(
                        module, node,
                        f"wall-clock call {dotted}(); timestamps in "
                        "simulation output must derive from the "
                        "simulated clock")


@register
class RngDisciplineRule(Rule):
    """All randomness flows through explicitly threaded generators.

    The stdlib ``random`` module and the legacy ``np.random.*`` API are
    process-global state: draws depend on call interleaving, so adding a
    component perturbs every other component's samples.  Components take
    an ``np.random.Generator`` parameter and the composition root builds
    streams from :class:`repro.sim.rng.RngRegistry`.
    """

    rule_id = "rng-discipline"
    severity = Severity.ERROR
    description = ("no stdlib random, no np.random global state; "
                   "stochastic code takes an explicit Generator")

    _LEGACY_NP = frozenset({
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "normal", "uniform", "exponential", "lognormal", "poisson",
        "binomial", "choice", "shuffle", "permutation", "standard_normal",
    })

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        imports = _ImportTracker()
        imports.visit(module.tree)
        numpy_aliases = {alias for alias, mod in
                         imports.module_aliases.items() if mod == "numpy"}
        npr_aliases = {alias for alias, mod in
                       imports.module_aliases.items()
                       if mod == "numpy.random"}
        npr_aliases |= {alias for alias, target in
                        imports.member_imports.items()
                        if target == "numpy.random"}

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.violation(
                            module, node,
                            "stdlib 'random' is process-global state; "
                            "thread an np.random.Generator instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        module, node,
                        "stdlib 'random' is process-global state; "
                        "thread an np.random.Generator instead")
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, numpy_aliases,
                                            npr_aliases)
        yield from self._check_unbound_rng(module)

    def _check_call(self, module: ModuleUnderLint, node: ast.Call,
                    numpy_aliases: set[str], npr_aliases: set[str]
                    ) -> Iterator[Violation]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        is_np_random = (
            (len(parts) == 3 and parts[0] in numpy_aliases
             and parts[1] == "random")
            or (len(parts) == 2 and parts[0] in npr_aliases))
        if not is_np_random:
            return
        tail = parts[-1]
        if tail == "seed":
            yield self.violation(
                module, node,
                "np.random.seed mutates the process-global generator; "
                "seed an RngRegistry instead")
        elif tail in self._LEGACY_NP:
            yield self.violation(
                module, node,
                f"np.random.{tail} draws from the process-global "
                "generator; draw from an explicit np.random.Generator")
        elif tail == "default_rng":
            yield self.violation(
                module, node,
                "ad-hoc default_rng() construction; derive streams from "
                "repro.sim.rng.RngRegistry so seeds stay coherent",
                severity=self.severity)

    def _check_unbound_rng(self, module: ModuleUnderLint
                           ) -> Iterator[Violation]:
        """Flag functions that *use* ``rng`` without receiving it.

        A load of the bare name ``rng`` that is bound neither in the
        function (parameter or assignment), in an enclosing function,
        nor at module level means the randomness source is implicit —
        the stochastic-function contract requires an explicit
        ``np.random.Generator`` argument.
        """
        module_names = _bound_names(module.tree)

        def walk(node: ast.AST, enclosing: set[str]) -> Iterator[Violation]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    bound = enclosing | _bound_names(child)
                    if "rng" not in bound:
                        for sub in ast.walk(child):
                            if (isinstance(sub, ast.Name)
                                    and sub.id == "rng"
                                    and isinstance(sub.ctx, ast.Load)):
                                name = getattr(child, "name", "<lambda>")
                                yield self.violation(
                                    module, sub,
                                    f"'{name}' uses 'rng' without "
                                    "declaring it; stochastic functions "
                                    "must accept an explicit "
                                    "np.random.Generator parameter")
                                break
                    yield from walk(child, bound)
                else:
                    yield from walk(child, enclosing)

        yield from walk(module.tree, module_names)


def _bound_names(node: ast.AST) -> set[str]:
    """Names bound directly inside ``node``'s scope (non-recursive into
    nested function scopes for assignments, but parameters included)."""
    bound: set[str] = set()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda)):
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        body = getattr(node, "body", [])
        if isinstance(body, ast.expr):   # lambda body binds nothing
            return bound
    else:
        body = getattr(node, "body", [])
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(sub.name)
            elif isinstance(sub, ast.ClassDef):
                bound.add(sub.name)
            elif isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)):
                bound.add(sub.id)
            elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                for alias in sub.names:
                    bound.add((alias.asname
                               or alias.name).split(".")[0])
    return bound


@register
class UnitSuffixMixingRule(Rule):
    """Additive arithmetic must not mix ``_tc``/``_us``/``_ms`` units.

    ``slot_tc + margin_us`` silently adds ticks to microseconds.  Convert
    at the boundary with :mod:`repro.phy.timebase`
    (``slot_tc + tc_from_us(margin_us)``), which this rule recognises
    because conversion calls carry the *target* unit.  Multiplicative
    operators are exempt (scaling by dimensionless factors is fine).
    """

    rule_id = "unit-suffix-mixing"
    severity = Severity.ERROR
    description = ("additive/comparison arithmetic mixing _tc/_us/_ms "
                   "suffixed names without a timebase conversion")

    _ADDITIVE = (ast.Add, ast.Sub, ast.Mod, ast.FloorDiv)

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.BinOp)
                    and isinstance(node.op, self._ADDITIVE)):
                left = _expr_unit(node.left)
                right = _expr_unit(node.right)
                if left and right and left != right:
                    yield self.violation(
                        module, node,
                        f"mixes units _{left} and _{right}; convert via "
                        "repro.phy.timebase (e.g. "
                        f"{left}_from_{right}(...)) before combining")
            elif isinstance(node, ast.Compare):
                units = [_expr_unit(node.left)]
                units.extend(_expr_unit(c) for c in node.comparators)
                present = [u for u in units if u]
                if len(set(present)) > 1:
                    mixed = " and ".join(f"_{u}" for u in sorted(set(present)))
                    yield self.violation(
                        module, node,
                        f"compares values in different units ({mixed}); "
                        "convert to a common unit via repro.phy.timebase")


@register
class NoFloatTickEqualityRule(Rule):
    """No ``==``/``!=`` between time quantities and floats.

    Ticks are exact integers; microsecond/millisecond values are floats
    produced by conversion and must be compared with tolerances or,
    better, compared in integer Tc.  ``latency_us == 0.5`` is a bug
    waiting for a rounding change.
    """

    rule_id = "no-float-tick-equality"
    severity = Severity.ERROR
    description = ("equality comparison between time-suffixed values "
                   "and floats, or between float-unit time values")

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for a, b in ((left, right), (right, left)):
                    unit = _expr_unit(a)
                    if unit is None:
                        continue
                    if _is_float_constant(b):
                        yield self.violation(
                            module, node,
                            f"exact equality between a _{unit} quantity "
                            "and a float literal; compare in integer Tc "
                            "or use a tolerance")
                        break
                    other = _expr_unit(b)
                    if (unit in FLOAT_TIME_SUFFIXES
                            and other in FLOAT_TIME_SUFFIXES):
                        yield self.violation(
                            module, node,
                            f"exact equality between float time values "
                            f"(_{unit} vs _{other}); compare in integer "
                            "Tc or use a tolerance")
                        break


def _is_float_constant(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp):
        return _is_float_constant(node.operand)
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class UnorderedIterationBeforeScheduleRule(Rule):
    """Never schedule events while iterating an unordered collection.

    Iterating a ``set`` (or hash-ordered view) and calling
    ``Simulator.schedule``/``call_in`` in the loop body makes the event
    sequence — and therefore every same-tick FIFO tie-break — depend on
    hash seeding.  Sort first: ``for ue in sorted(ues): ...``.
    """

    rule_id = "unordered-iteration-before-schedule"
    severity = Severity.ERROR
    description = ("iterating a set/.keys() view and scheduling "
                   "simulator events in the loop body")

    _SCHEDULE_METHODS = frozenset({"schedule", "call_in"})

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            reason = self._unordered_reason(node.iter)
            if reason is None:
                continue
            if self._body_schedules(node.body + node.orelse):
                yield self.violation(
                    module, node,
                    f"iterates {reason} and schedules simulator events "
                    "in the loop body; iterate sorted(...) so the event "
                    "order is deterministic")

    def _unordered_reason(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set",
                                                          "frozenset"):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                return "a .keys() view"
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            left = self._unordered_reason(node.left)
            right = self._unordered_reason(node.right)
            if left or right:
                return left or right
        return None

    def _body_schedules(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in self._SCHEDULE_METHODS):
                    return True
        return False


@register
class PublicApiExportsRule(Rule):
    """Every public module declares ``__all__``.

    An explicit export list keeps the API surface reviewable (the
    ``tests/test_public_api.py`` contract) and lets the other rules
    reason about what is intentionally public.  Private modules
    (``_name.py``) are exempt.
    """

    rule_id = "public-api-exports"
    severity = Severity.ERROR
    description = "public module lacks an __all__ export list"

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        from pathlib import Path
        name = Path(module.path).name
        if name.startswith("_") and name != "__init__.py":
            return
        for node in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.target:
                targets = [node.target]
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id == "__all__"):
                    return
        kind = "package" if module.is_package_init else "module"
        yield self.violation(
            module, module.tree,
            f"public {kind} does not declare __all__; list its "
            "intended exports explicitly")


@register
class FaultStreamsNamedRule(Rule):
    """Fault injectors draw only from registered ``fault.*`` streams.

    The fault-injection determinism contract (docs/ROBUSTNESS.md) rests
    on every injector owning a named :class:`repro.sim.rng.RngRegistry`
    stream with a literal ``fault.`` prefix: adding or removing a fault
    plan must never perturb the draws of fault-free components, and a
    trace digest must identify which stream produced which fault.  A
    ``.stream(...)`` call in fault code whose name is not statically
    ``fault.*`` — or any direct ``numpy.random`` use — breaks that
    contract silently.  Applies only to fault modules (a ``faults``
    package directory, or ``fault``/``faults`` in the file stem).
    """

    rule_id = "fault-streams-named"
    severity = Severity.ERROR
    description = ("fault-injection code must draw from registry "
                   "streams named 'fault.*', never ad-hoc generators")

    _FAULT_TOKENS = frozenset({"fault", "faults"})

    def _applies(self, module: ModuleUnderLint) -> bool:
        import re
        from pathlib import Path
        path = Path(module.path)
        if "faults" in path.parts[:-1]:
            return True
        tokens = re.split(r"[^a-z0-9]+", path.stem.lower())
        return bool(self._FAULT_TOKENS & set(tokens))

    def _stream_name_violation(self, module: ModuleUnderLint,
                               node: ast.Call,
                               arg: ast.expr) -> Violation | None:
        """Validate a stream-name argument via the detsan resolver.

        Delegating to :func:`repro.devtools.detsan.resolver
        .resolve_stream_name` means f-strings and concatenations are
        judged by the same template grammar the ownership map uses:
        ``f"fault.{kind}.{index}"`` resolves to ``fault.{*}.{*}`` and
        passes, while a fully dynamic name is reported as unresolvable
        rather than silently failing the prefix check.
        """
        from repro.devtools.detsan.resolver import (is_resolved,
                                                    resolve_stream_name)
        template = resolve_stream_name(arg)
        if template is None or not is_resolved(template):
            return self.violation(
                module, node,
                "stream name cannot be resolved statically; use a "
                "literal (or an f-string with a literal 'fault.' "
                "prefix) so the detsan ownership map can cover it")
        if not template.startswith("fault."):
            return self.violation(
                module, node,
                "fault injectors must draw from a registry stream "
                "whose name literally starts with 'fault.' "
                f"(resolves to '{template}')")
        return None

    def check(self, module: ModuleUnderLint) -> Iterator[Violation]:
        if not self._applies(module):
            return
        imports = _ImportTracker()
        imports.visit(module.tree)
        numpy_aliases = {alias for alias, mod in
                         imports.module_aliases.items() if mod == "numpy"}
        npr_aliases = {alias for alias, mod in
                       imports.module_aliases.items()
                       if mod == "numpy.random"}
        npr_aliases |= {alias for alias, target in
                        imports.member_imports.items()
                        if target == "numpy.random"}
        npr_members = {alias for alias, target in
                       imports.member_imports.items()
                       if target.startswith("numpy.random.")}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "stream":
                if not node.args:
                    yield self.violation(
                        module, node,
                        "fault injectors must draw from a registry "
                        "stream whose name literally starts with "
                        "'fault.' (fault.<kind>.<index>)")
                else:
                    found = self._stream_name_violation(
                        module, node, node.args[0])
                    if found is not None:
                        yield found
                continue
            dotted = _dotted(func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            from_np_random = (
                (len(parts) >= 3 and parts[0] in numpy_aliases
                 and parts[1] == "random")
                or (len(parts) >= 2 and parts[0] in npr_aliases)
                or (len(parts) == 1 and parts[0] in npr_members))
            if from_np_random:
                yield self.violation(
                    module, node,
                    f"direct numpy.random use ({dotted}) in fault code "
                    "bypasses the seed-stream registry; draw from a "
                    "named 'fault.*' stream instead")
