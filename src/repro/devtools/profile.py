"""cProfile harness for campaign runs (``urllc5g bench --profile``).

Perf work on the simulator must start from data, not guesses: this
module wraps a callable in :mod:`cProfile`, aggregates the resulting
statistics *per ``repro`` module*, and writes a ``PROFILE_<name>.json``
document next to the bench output.  The per-module view answers the
question every perf PR starts with — "where does the wall-clock go:
engine, sampling, tracing, or the analytical model?" — without wading
through per-function noise.

Timing discipline: cProfile's internal timer is a wall-clock source,
which is banned everywhere simulation results are computed; it is
sanctioned here (see the reviewed per-path table in ``pyproject.toml``)
because profiling measures the *host*, never the simulated system, and
the profiled callable's return value is passed through untouched.  All
numbers in the JSON come from :mod:`pstats` aggregation; the module
itself never reads ``time.*``.

Reading the document is covered in docs/PERFORMANCE.md.
"""

from __future__ import annotations

import cProfile
import json
import pstats
from pathlib import Path
from typing import Any, Callable, TypeVar

__all__ = [
    "ProfileReport",
    "profile_call",
    "aggregate_by_module",
    "write_profile_json",
]

T = TypeVar("T")


class ProfileReport:
    """Raw profiler statistics plus the aggregated per-module view."""

    def __init__(self, stats: pstats.Stats):
        self.stats = stats
        self.modules = aggregate_by_module(stats)

    @property
    def total_time_s(self) -> float:
        """Total time under the profiler (sum of per-function tottime)."""
        return float(self.stats.total_tt)

    def payload(self, name: str) -> dict[str, Any]:
        """The JSON document body for ``PROFILE_<name>.json``."""
        return {
            "schema": "urllc5g-profile/1",
            "campaign": name,
            "total_time_s": self.total_time_s,
            "modules": self.modules,
            "top_functions": top_functions(self.stats),
        }


def profile_call(fn: Callable[[], T]) -> tuple[T, ProfileReport]:
    """Run ``fn`` under cProfile; return its result and the report."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    return result, ProfileReport(stats)


def _module_of(filename: str) -> str:
    """Map a stats filename to a dotted ``repro.*`` module, or a bucket.

    Anything outside the ``repro`` package is folded into two buckets:
    ``<builtin>`` for C-level entries and ``<other>`` for Python code
    (stdlib, numpy front-end...) — the breakdown exists to compare our
    modules, not to profile CPython.
    """
    if filename.startswith("~") or filename.startswith("<"):
        return "<builtin>"
    parts = Path(filename).with_suffix("").parts
    try:
        index = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    except ValueError:
        return "<other>"
    dotted = ".".join(parts[index:])
    return dotted[:-len(".__init__")] if dotted.endswith(".__init__") \
        else dotted


def aggregate_by_module(stats: pstats.Stats) -> dict[str, dict[str, Any]]:
    """Per-module totals, sorted by descending own-time.

    ``tottime_s`` (time spent in the module's own frames) is additive —
    the values sum to ``total_time_s``.  ``cumtime_s`` is the familiar
    cumulative time of the module's *primitive* calls; modules whose
    functions call each other count shared time once per function, so
    treat it as indicative, not additive.
    """
    modules: dict[str, dict[str, Any]] = {}
    for (filename, _line, _name), (cc, nc, tt, ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        entry = modules.setdefault(
            _module_of(filename),
            {"tottime_s": 0.0, "cumtime_s": 0.0,
             "calls": 0, "primitive_calls": 0})
        entry["tottime_s"] += tt
        entry["cumtime_s"] += ct
        entry["calls"] += nc
        entry["primitive_calls"] += cc
    return dict(sorted(modules.items(),
                       key=lambda item: -item[1]["tottime_s"]))


def top_functions(stats: pstats.Stats,
                  limit: int = 25) -> list[dict[str, Any]]:
    """The ``limit`` most expensive functions by own time."""
    rows = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "module": _module_of(filename),
            "function": name,
            "line": line,
            "calls": nc,
            "tottime_s": tt,
            "cumtime_s": ct,
        })
    rows.sort(key=lambda row: -row["tottime_s"])
    return rows[:limit]


def write_profile_json(path: str | Path, name: str,
                       report: ProfileReport) -> Path:
    """Write ``PROFILE_<name>.json``-style document; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report.payload(name), indent=2,
                               sort_keys=False) + "\n",
                    encoding="utf-8")
    return path
