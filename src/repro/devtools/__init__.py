"""Developer tooling for the urllc5g reproduction.

Two quality gates live here, both wired into the ``urllc5g`` CLI and CI:

- :mod:`repro.devtools.lintkit` — an AST static-analysis framework with
  domain rules enforcing the invariants the paper's results rest on
  (no wall-clock reads in simulated paths, explicit RNG threading,
  time-unit suffix consistency, deterministic iteration order);
- :mod:`repro.devtools.determinism` — a runtime sanitizer that runs a
  scenario twice with the same seed and compares trace digests.
"""

from repro.devtools.determinism import (
    DeterminismReport,
    determinism_report,
    run_traced_scenario,
)
from repro.devtools.lintkit import (
    LintConfig,
    LintReport,
    Rule,
    Severity,
    Violation,
    lint_paths,
)

__all__ = [
    "DeterminismReport",
    "determinism_report",
    "run_traced_scenario",
    "LintConfig",
    "LintReport",
    "Rule",
    "Severity",
    "Violation",
    "lint_paths",
]
