"""Developer tooling for the urllc5g reproduction.

Three quality gates live here, all wired into the ``urllc5g`` CLI and CI:

- :mod:`repro.devtools.lintkit` — an AST static-analysis framework with
  per-file domain rules enforcing the invariants the paper's results
  rest on (no wall-clock reads in simulated paths, explicit RNG
  threading, time-unit suffix consistency, deterministic iteration
  order);
- :mod:`repro.devtools.analyze` — the whole-program companion:
  cross-module time-unit inference and transitive purity checking over
  the project call graph (see docs/ANALYSIS.md);
- :mod:`repro.devtools.determinism` — a runtime sanitizer that runs a
  scenario twice with the same seed and compares trace digests.

Shared infrastructure: :mod:`repro.devtools.walker` (file discovery)
and :mod:`repro.devtools.sarif` (SARIF 2.1.0 output).
"""

from repro.devtools.analyze import AnalysisReport, analyze_paths
from repro.devtools.determinism import (
    DeterminismReport,
    determinism_report,
    run_traced_scenario,
)
from repro.devtools.lintkit import (
    LintConfig,
    LintReport,
    Rule,
    Severity,
    Violation,
    lint_paths,
)

__all__ = [
    "AnalysisReport",
    "DeterminismReport",
    "analyze_paths",
    "determinism_report",
    "run_traced_scenario",
    "LintConfig",
    "LintReport",
    "Rule",
    "Severity",
    "Violation",
    "lint_paths",
]
