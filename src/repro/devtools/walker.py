"""Shared source-file discovery for ``urllc5g lint`` and ``analyze``.

Both tools accept a mix of files and directories and must visit the
same set of modules in the same (sorted, deterministic) order, so the
walk lives here rather than in either tool.  Directories are expanded
recursively; ``__pycache__`` and hidden directories are skipped.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["iter_python_files"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__"})


def _wanted(path: Path) -> bool:
    parts = path.parts
    return not any(part in _SKIP_DIRS or part.startswith(".")
                   for part in parts)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted within each root.

    Files are yielded exactly once even if roots overlap; explicit file
    arguments are yielded regardless of extension filtering rules for
    directories (they must still be ``.py``).
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _wanted(candidate.relative_to(path)):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield candidate
        elif path.suffix == ".py":
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path
