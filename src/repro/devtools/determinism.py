"""Runtime determinism sanitizer.

The static rules in :mod:`repro.devtools.lintkit` catch the common
*sources* of nondeterminism; this module checks the *outcome*: run the
same traced scenario twice with the same seed and require bit-identical
trace digests (:meth:`repro.sim.trace.Tracer.digest`).  Exposed as
``urllc5g check --determinism`` and as a pytest test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

__all__ = ["DeterminismReport", "determinism_report",
           "run_traced_scenario"]


@dataclass(frozen=True)
class DeterminismReport:
    """The result of running one scenario ``runs`` times."""

    seed: int
    packets: int
    digests: tuple[str, ...]
    events_processed: tuple[int, ...]

    @property
    def ok(self) -> bool:
        """True when every run produced the same trace digest."""
        return len(set(self.digests)) == 1

    def render(self) -> str:
        lines = [f"determinism check: seed={self.seed} "
                 f"packets={self.packets} runs={len(self.digests)}"]
        for i, (digest, events) in enumerate(
                zip(self.digests, self.events_processed), start=1):
            lines.append(f"  run {i}: {events} events, "
                         f"digest {digest[:16]}…")
        lines.append("PASS: identical trace digests" if self.ok
                     else "FAIL: trace digests differ between "
                          "same-seed runs")
        return "\n".join(lines)


def run_traced_scenario(seed: int, packets: int = 40,
                        access: AccessMode = AccessMode.GRANT_FREE
                        ) -> tuple[str, int]:
    """Run the §7 testbed scenario once, fully traced.

    Mixed UL data and ping traffic exercises the scheduler, HARQ
    feedback, the air link and the core-network path.  Returns the
    trace digest and the number of simulator events processed.
    """
    radio_head = RadioHead("b210", usb3(), gpos())
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=access, gnb_radio_head=radio_head,
                  seed=seed, trace=True))
    horizon_tc = tc_from_ms(max(1, packets) * 2)
    arrivals = uniform_in_horizon(
        packets, horizon_tc, RngRegistry(seed).stream("arrivals"))
    system.queue_uplink(arrivals)
    ping_at = tc_from_ms(0.25)
    system.queue_pings([ping_at])
    system.run()
    return system.tracer.digest(), system.sim.events_processed


def determinism_report(seed: int = 7, packets: int = 40,
                       runs: int = 2,
                       access: AccessMode = AccessMode.GRANT_FREE
                       ) -> DeterminismReport:
    """Run the scenario ``runs`` times and compare trace digests."""
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    digests: list[str] = []
    events: list[int] = []
    for _ in range(runs):
        digest, processed = run_traced_scenario(seed, packets, access)
        digests.append(digest)
        events.append(processed)
    return DeterminismReport(seed=seed, packets=packets,
                             digests=tuple(digests),
                             events_processed=tuple(events))
