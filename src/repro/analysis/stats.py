"""Histogram/CDF utilities used by the figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Histogram", "histogram", "Cdf", "cdf"]


@dataclass(frozen=True)
class Histogram:
    """A normalised histogram (Fig 6's y-axis is probability)."""

    bin_edges: tuple[float, ...]
    probabilities: tuple[float, ...]

    @property
    def bin_centers(self) -> tuple[float, ...]:
        edges = self.bin_edges
        return tuple((edges[i] + edges[i + 1]) / 2
                     for i in range(len(edges) - 1))

    def mode_bin(self) -> float:
        """Center of the most probable bin."""
        index = int(np.argmax(self.probabilities))
        return self.bin_centers[index]

    def render(self, width: int = 50, label: str = "") -> str:
        """ASCII rendering (one row per bin)."""
        peak = max(self.probabilities) or 1.0
        lines = [label] if label else []
        for center, probability in zip(self.bin_centers,
                                       self.probabilities):
            bar = "█" * round(width * probability / peak)
            lines.append(f"{center:9.2f} | {probability:6.3f} {bar}")
        return "\n".join(lines)


def histogram(samples: list[float], bin_width: float,
              low: float | None = None,
              high: float | None = None) -> Histogram:
    """Probability histogram with fixed-width bins."""
    if not samples:
        raise ValueError("no samples")
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    array = np.asarray(samples, dtype=float)
    lo = low if low is not None else 0.0
    hi = high if high is not None else float(array.max()) + bin_width
    edges = np.arange(lo, hi + bin_width, bin_width)
    counts, edges = np.histogram(array, bins=edges)
    probabilities = counts / len(array)
    return Histogram(tuple(float(e) for e in edges),
                     tuple(float(p) for p in probabilities))


@dataclass(frozen=True)
class Cdf:
    """Empirical CDF."""

    values: tuple[float, ...]       #: sorted samples
    cumulative: tuple[float, ...]   #: P(X <= value)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return float(np.quantile(np.asarray(self.values), q))

    def probability_at_or_below(self, threshold: float) -> float:
        """P(X <= threshold) — e.g. the fraction of sub-ms packets."""
        values = np.asarray(self.values)
        return float(np.mean(values <= threshold))


def cdf(samples: list[float]) -> Cdf:
    """Build an empirical CDF."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    n = len(ordered)
    return Cdf(tuple(ordered), tuple((i + 1) / n for i in range(n)))
