"""CSV export of measurement results.

The repository renders its artifacts as text (no plotting dependency),
but downstream users will want the raw series for their own tooling.
These helpers write standard CSV with a stable column layout:

- :func:`export_probe` — one row per delivered packet, with the
  three-source latency decomposition;
- :func:`export_histogram` — a rendered histogram's bins;
- :func:`export_series` — generic {x: [samples]} sweeps (e.g. Fig 5).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.stats import Histogram
from repro.net.probes import LatencyProbe
from repro.stack.packets import LatencySource
from repro.phy.timebase import us_from_tc

__all__ = ["export_probe", "export_histogram", "export_series"]


def export_probe(probe: LatencyProbe, path: str | Path) -> int:
    """Write one row per delivered packet; returns the row count."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow((
            "packet_id", "ue_id", "kind", "direction",
            "created_tc", "delivered_tc", "latency_us",
            "protocol_us", "processing_us", "radio_us",
            "harq_retransmissions", "payload_bytes",
        ))
        for packet in probe.packets:
            assert packet.latency_tc is not None
            writer.writerow((
                packet.packet_id,
                packet.ue_id,
                packet.kind.value,
                packet.direction.value,
                packet.created_tc,
                packet.delivered_tc,
                f"{us_from_tc(packet.latency_tc):.3f}",
                f"{us_from_tc(packet.budget[LatencySource.PROTOCOL]):.3f}",
                f"{us_from_tc(packet.budget[LatencySource.PROCESSING]):.3f}",
                f"{us_from_tc(packet.budget[LatencySource.RADIO]):.3f}",
                packet.harq_retransmissions,
                packet.payload_bytes,
            ))
    return len(probe.packets)


def export_histogram(histogram: Histogram, path: str | Path,
                     x_label: str = "bin_center") -> int:
    """Write a histogram's bins; returns the bin count."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow((x_label, "probability"))
        for center, probability in zip(histogram.bin_centers,
                                       histogram.probabilities):
            writer.writerow((f"{center:.6g}", f"{probability:.6g}"))
    return len(histogram.probabilities)


def export_series(series: Mapping[object, Sequence[float]],
                  path: str | Path,
                  x_label: str = "x", y_label: str = "y") -> int:
    """Write an {x: [samples]} sweep long-form; returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow((x_label, y_label))
        for x_value, samples in series.items():
            for sample in samples:
                writer.writerow((x_value, f"{sample:.6g}"))
                rows += 1
    return rows
