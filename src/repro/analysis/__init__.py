"""Analysis utilities: histograms, CDFs, and paper-style renderers."""

from repro.analysis.export import (
    export_histogram,
    export_probe,
    export_series,
)
from repro.analysis.stats import Cdf, Histogram, cdf, histogram
from repro.analysis.report import (
    render_layer_table,
    render_table,
    render_tdd_configuration,
    render_worst_case_bars,
)

__all__ = [
    "export_histogram",
    "export_probe",
    "export_series",
    "Cdf",
    "Histogram",
    "cdf",
    "histogram",
    "render_layer_table",
    "render_table",
    "render_tdd_configuration",
    "render_worst_case_bars",
]
