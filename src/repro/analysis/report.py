"""Text renderers for the paper's figures and tables.

Benchmarks print these so a run's output can be compared side-by-side
with the paper; everything is plain text (the repository has no plotting
dependency by design).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.mac.tdd import TddCommonConfig
from repro.mac.types import SymbolRole
from repro.phy.timebase import us_from_tc

__all__ = [
    "render_tdd_configuration",
    "render_table",
    "render_layer_table",
    "render_worst_case_bars",
]


def render_tdd_configuration(config: TddCommonConfig) -> str:
    """Fig 1a-style rendering of a Common Configuration.

    One row per slot, symbols drawn as D/U/- (flexible/guard).
    """
    char = {SymbolRole.DL: "D", SymbolRole.UL: "U",
            SymbolRole.FLEXIBLE: "-"}
    lines = [config.describe()]
    letters = config.slot_letters()
    for index, roles in enumerate(config.slot_roles()[:len(letters)]):
        symbols = "".join(char[role] for role in roles)
        lines.append(f"  slot {index} [{letters[index]}]  {symbols}")
    return "\n".join(lines)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Generic fixed-width table renderer."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} does not match {columns} headers")
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells))
              if cells else len(headers[i]) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(columns)))
    return "\n".join(lines)


def render_layer_table(measured: Mapping[str, tuple[float, float]],
                       paper: Mapping[str, tuple[float, float]],
                       title: str = "gNB layer processing times"
                       ) -> str:
    """Table 2 side-by-side: measured (simulated) vs paper values."""
    rows = []
    for layer, (mean, std) in measured.items():
        paper_mean, paper_std = paper.get(layer, (float("nan"),) * 2)
        rows.append((layer, f"{mean:.2f}", f"{std:.2f}",
                     f"{paper_mean:.2f}", f"{paper_std:.2f}"))
    return render_table(
        ("Layer", "Mean [µs]", "STD [µs]",
         "Paper mean", "Paper STD"),
        rows, title=title)


def render_worst_case_bars(entries: Mapping[str, int],
                           budget_tc: int,
                           width: int = 60) -> str:
    """Fig 4-style bars: worst-case latency per mode vs the budget."""
    peak = max(max(entries.values()), budget_tc)
    budget_col = round(width * budget_tc / peak)
    lines = []
    for name, worst_tc in entries.items():
        bar_len = round(width * worst_tc / peak)
        bar = ""
        for position in range(max(bar_len, budget_col) + 1):
            if position == budget_col:
                bar += "|"
            elif position < bar_len:
                bar += "#"
            else:
                bar += " "
        lines.append(f"{name:<22} {bar} {us_from_tc(worst_tc):7.1f} µs")
    lines.append(f"{'':<22} {' ' * budget_col}^ budget "
                 f"{us_from_tc(budget_tc):.0f} µs")
    return "\n".join(lines)
