#!/usr/bin/env python3
"""Reproduce the paper's §7 demonstration in simulation.

The testbed: srsRAN on an Intel i7, USRP B210 over USB, band n78,
0.5 ms slots, TDD DDDU, packets generated uniformly within the pattern.
This script regenerates the §7 artifacts:

- Fig 6a/6b — one-way latency histograms for DL and UL under
  grant-based and grant-free access,
- Table 2 — per-layer gNB processing times plus the emergent RLC
  queue waiting time.

Run:  python examples/testbed_demonstration.py
"""

import numpy as np

from repro import AccessMode, RanConfig, RanSystem, testbed_dddu
from repro.analysis.report import render_layer_table
from repro.analysis.stats import histogram
from repro.calibration import GNB_LAYER_STATS, PAPER_RLC_QUEUE_STATS
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

N_PACKETS = 1_000
HORIZON_MS = 4_000


def build_system(access: AccessMode, seed: int) -> RanSystem:
    radio_head = RadioHead("b210", usb3(), gpos())
    return RanSystem(testbed_dddu(),
                     RanConfig(access=access, gnb_radio_head=radio_head,
                               seed=seed))


def arrivals(seed: int) -> list[int]:
    return uniform_in_horizon(N_PACKETS, tc_from_ms(HORIZON_MS),
                              RngRegistry(seed).stream("arrivals"))


def main() -> None:
    print("Fig 6 — one-way latency distributions "
          f"({N_PACKETS} packets per series)\n")
    for access in (AccessMode.GRANT_BASED, AccessMode.GRANT_FREE):
        print(f"--- {access.value} ---")
        for direction in ("Downlink", "Uplink"):
            system = build_system(access, seed=11)
            if direction == "Downlink":
                probe = system.run_downlink(arrivals(seed=3))
            else:
                probe = system.run_uplink(arrivals(seed=4))
            hist = histogram(probe.latencies_ms(), bin_width=0.5,
                             low=0.0, high=8.0)
            print(hist.render(width=40,
                              label=f"{direction} (one-way ms): "
                                    f"{probe.summary()}"))
            print()

    # ------------------------------------------------------------------
    # Table 2: sampled layer times + the emergent RLC-q.
    # ------------------------------------------------------------------
    system = build_system(AccessMode.GRANT_FREE, seed=17)
    system.run_downlink(arrivals(seed=5))
    measured: dict[str, tuple[float, float]] = {}
    for name in ("SDAP", "PDCP", "RLC"):
        samples = system.gnb.down_pipeline.layer(name).samples_us
        measured[name] = (float(np.mean(samples)), float(np.std(samples)))
    waits = system.gnb.scheduler.dl_queue(1).wait_samples_us
    measured["RLC-q"] = (float(np.mean(waits)), float(np.std(waits)))
    paper = dict(GNB_LAYER_STATS)
    paper["RLC-q"] = PAPER_RLC_QUEUE_STATS
    print(render_layer_table(
        measured, paper,
        title="Table 2 — gNB processing and queuing times "
              "(simulated vs paper)"))
    print("\nNote: SDAP/PDCP/RLC are calibrated inputs (they should "
          "match); RLC-q is emergent —\nthe simulation must produce the "
          "paper's few-hundred-µs dominance on its own.")


if __name__ == "__main__":
    main()
