#!/usr/bin/env python3
"""Trace the journey of a ping (paper §3, Fig 2/3).

Runs one traced ping through the full UE → gNB → UPF → server → UE
path and prints the reconstructed step-by-step temporal breakdown,
including the SR/grant handshake when grant-based access is used.

Run:  python examples/ping_journey.py
"""

from repro import (
    AccessMode,
    RanConfig,
    RanSystem,
    reconstruct_ping_journey,
    testbed_dddu,
)
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead


def main() -> None:
    radio_head = RadioHead("b210", usb3(), gpos())
    for access in (AccessMode.GRANT_BASED, AccessMode.GRANT_FREE):
        print(f"=== {access.value} uplink ===")
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=access, gnb_radio_head=radio_head,
                      trace=True, seed=5))
        results = system.run_ping([tc_from_ms(0.1)])
        journey = reconstruct_ping_journey(results[0], system.tracer)
        print(journey.render())
        print()
    print("Note how the grant-based journey spends most of its uplink "
          "time in steps ②-⑥\n(the SR → grant handshake, §4), which "
          "grant-free access removes entirely.")


if __name__ == "__main__":
    main()
