#!/usr/bin/env python3
"""The §9 scalability question, end to end.

"Our analysis focused on a single UE.  As the number of UEs increases,
factors like processing time, radio latency, contention, and
scheduling complexity become more challenging."

This study grows the UE population on the testbed pattern and watches
all four §9 factors at once:

- configured-grant waste (pre-allocated UL capacity nobody used),
- gNB processing inflation on a single core,
- PDCCH DCI blocking at URLLC aggregation levels,
- the resulting per-UE latency.

Run:  python examples/scalability_study.py
"""

import numpy as np

from repro import AccessMode, RanConfig, RanSystem, testbed_dddu
from repro.analysis.report import render_table
from repro.phy.timebase import tc_from_ms, us_from_tc
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

UE_COUNTS = (1, 4, 16)
PACKETS_PER_UE = 100
HORIZON_MS = 600


def run_population(n_ues: int) -> dict:
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE, n_ues=n_ues,
                  gnb_cpu_cores=1, pdcch_cces=16,
                  aggregation_level=8, seed=160 + n_ues))
    for ue_id in range(1, n_ues + 1):
        arrivals = uniform_in_horizon(
            PACKETS_PER_UE, tc_from_ms(HORIZON_MS),
            RngRegistry(500 + ue_id).stream("arrivals"))
        system.queue_uplink(arrivals, ue_id=ue_id)
        system.queue_downlink(arrivals, ue_id=ue_id)
    system.run()
    counters = system.gnb.scheduler.counters
    assert system.pdcch is not None and system.gnb_cpu is not None
    return {
        "ul_mean": system.ul_probe.summary().mean_us,
        "dl_p99": system.dl_probe.summary().p99_us,
        "cg_waste": counters.cg_waste_fraction(),
        "cpu_wait": system.gnb_cpu.mean_queueing_us(),
        "dci_blocking": system.pdcch.counters.blocking_probability(),
    }


def main() -> None:
    rows = []
    for n_ues in UE_COUNTS:
        result = run_population(n_ues)
        rows.append((n_ues,
                     f"{result['ul_mean']:8.1f}",
                     f"{result['dl_p99']:8.1f}",
                     f"{result['cg_waste']:.1%}",
                     f"{result['cpu_wait']:6.1f}",
                     f"{result['dci_blocking']:.1%}"))
    print(render_table(
        ("UEs", "UL mean µs", "DL p99 µs", "CG waste",
         "CPU wait µs", "DCI blocking"), rows,
        title="Scaling the testbed cell (1 CPU core, 16-CCE CORESET, "
              "AL-8)"))
    print(
        "\nEvery §9 factor moves at once: grant-free pre-allocation is\n"
        "mostly wasted yet shrinks per-UE, the single core queues layer\n"
        "work, and URLLC-grade DCIs exhaust the control channel — the\n"
        "paper's call for multi-UE latency models in one picture.")


if __name__ == "__main__":
    main()
