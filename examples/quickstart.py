#!/usr/bin/env python3
"""Quickstart: the paper's headline analysis in a dozen lines.

1. Reproduce Table 1 — which 5G configurations can meet the URLLC
   0.5 ms one-way latency requirement at all.
2. Inspect the worst-case latency of the one feasible TDD Common
   Configuration (DM) — Fig 4.
3. Run a small end-to-end simulation of the paper's testbed (§7) and
   print the measured one-way latencies.

Run:  python examples/quickstart.py
"""

from repro import (
    AccessMode,
    Direction,
    LatencyModel,
    RanConfig,
    RanSystem,
    feasibility_matrix,
    minimal_dm,
    render_table1,
    testbed_dddu,
)
from repro.phy.timebase import tc_from_ms
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Table 1: the feasibility matrix, computed analytically.
    # ------------------------------------------------------------------
    print("Table 1 — 0.5 ms one-way feasibility of the minimal "
          "configurations\n")
    print(render_table1(feasibility_matrix()))

    # ------------------------------------------------------------------
    # 2. Fig 4: worst cases of the DM configuration.
    # ------------------------------------------------------------------
    print("\nFig 4 — worst-case latencies of the DM configuration")
    model = LatencyModel(minimal_dm())
    for label, direction, access in (
            ("grant-free UL", Direction.UL, AccessMode.GRANT_FREE),
            ("grant-based UL", Direction.UL, AccessMode.GRANT_BASED),
            ("DL", Direction.DL, AccessMode.GRANT_FREE)):
        extremes = model.extremes(direction, access)
        verdict = "meets" if extremes.worst_tc <= tc_from_ms(0.5) \
            else "VIOLATES"
        print(f"  {label:<15} worst {extremes.worst_ms:5.3f} ms "
              f"→ {verdict} the 0.5 ms budget")

    # ------------------------------------------------------------------
    # 3. A small simulation of the §7 testbed configuration.
    # ------------------------------------------------------------------
    print("\nSimulated one-way latency on the DDDU testbed "
          "configuration (no radio head):")
    arrivals = uniform_in_horizon(
        200, tc_from_ms(500), RngRegistry(1).stream("arrivals"))
    for access in (AccessMode.GRANT_FREE, AccessMode.GRANT_BASED):
        system = RanSystem(testbed_dddu(), RanConfig(access=access))
        summary = system.run_uplink(arrivals).summary()
        print(f"  UL {access.value:<12} {summary}")
    system = RanSystem(testbed_dddu(), RanConfig())
    print(f"  DL {'':<12} {system.run_downlink(arrivals).summary()}")


if __name__ == "__main__":
    main()
