#!/usr/bin/env python3
"""Explore the URLLC design space beyond Table 1.

Sweeps the §5 analysis along three axes the paper discusses:

- slot duration (numerology) — "only the 0.25 ms slot duration can
  feasibly achieve the URLLC requirements",
- radio latency — "if the radio latency is 0.3 ms, halving the slot
  duration might not reduce latency" (§4),
- alternative wireless technologies (§9) — Wi-Fi contention and
  Bluetooth polling against the same 0.5 ms budget.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro import AccessMode, Direction, SystemProfile, minimal_dm
from repro.analysis.report import render_table
from repro.baselines.bluetooth import BluetoothPiconet
from repro.baselines.mmwave import MmWaveBaseline
from repro.baselines.wifi import WifiBaseline
from repro.core.budget import slot_duration_sweep, worst_case_budget


def sweep_slot_duration() -> None:
    print("A. Worst-case DL latency vs slot duration and radio latency")
    radio_values = [0.0, 100.0, 300.0, 500.0]
    sweep = slot_duration_sweep(minimal_dm, mus=[0, 1, 2],
                                direction=Direction.DL,
                                access=AccessMode.GRANT_FREE,
                                radio_us_values=radio_values)
    rows = []
    for radio_us in radio_values:
        per_mu = sweep[radio_us]
        rows.append((f"{radio_us:g} µs radio",
                     *(f"{per_mu[mu]:7.0f}" for mu in (0, 1, 2))))
    print(render_table(
        ("", "µ=0 (1 ms)", "µ=1 (0.5 ms)", "µ=2 (0.25 ms)"), rows))
    print("→ once the radio dominates, shrinking slots stops paying "
          "off (§4).\n")


def compare_access_modes() -> None:
    print("B. DM worst cases per access mode (ideal vs testbed radio)")
    rows = []
    for label, profile in (("ideal", SystemProfile()),
                           ("testbed", SystemProfile.testbed())):
        for access in AccessMode:
            breakdown = worst_case_budget(minimal_dm(), Direction.UL,
                                          access, profile)
            rows.append((label, access.value,
                         f"{breakdown.total_us:7.0f}",
                         breakdown.bottleneck()))
    print(render_table(("system", "UL access", "worst µs",
                        "bottleneck"), rows))
    print()


def compare_technologies() -> None:
    print("C. Alternative technologies against the 0.5 ms budget (§9)")
    rng = np.random.default_rng(3)
    rows = []
    mmwave = MmWaveBaseline()
    rows.append(("5G FR2 mmWave",
                 f"{mmwave.sub_ms_fraction(rng, draws=40_000):7.1%}",
                 "LoS blockage + buffering"))
    for stations in (2, 10):
        wifi = WifiBaseline(n_stations=stations)
        reliability = wifi.deadline_reliability(500.0, rng,
                                                draws=20_000)
        rows.append((f"Wi-Fi DCF ({stations} stations)",
                     f"{reliability:7.1%}", "contention tail"))
    for slaves in (1, 7):
        piconet = BluetoothPiconet(slaves)
        meets = piconet.worst_case_uplink_us() <= 500.0
        rows.append((f"Bluetooth ({slaves} slaves)",
                     "  0.0%" if not meets else "100.0%",
                     f"polling cycle {piconet.polling_cycle_us:g} µs"))
    print(render_table(("technology", "within 0.5 ms", "limiting factor"),
                       rows))
    print("→ none approaches 99.999 %; 5G's scheduled slots remain the "
          "only viable path.")


def main() -> None:
    sweep_slot_duration()
    compare_access_modes()
    compare_technologies()


if __name__ == "__main__":
    main()
