#!/usr/bin/env python3
"""Industrial automation over private 5G — the paper's flagship use case.

A factory deploys a private 5G network (TDD-only spectrum, §2/§9) to
close 1 kHz control loops with a 0.5 ms one-way deadline at 99.999 %
reliability.  This example walks the §5 design procedure:

1. pick the only feasible TDD Common Configuration (DM, grant-free UL),
2. check what the radio head choice does to the budget (§4: the radio
   can bottleneck the system),
3. simulate the control traffic and score it against the requirement.

Run:  python examples/industrial_automation.py
"""

from repro import (
    AccessMode,
    Direction,
    RanConfig,
    RanSystem,
    SystemProfile,
    minimal_dm,
    worst_case_budget,
)
from repro.core.reliability import assess
from repro.phy.timebase import tc_from_ms, tc_from_us
from repro.radio.interface import pcie, usb3
from repro.radio.os_jitter import gpos, rt_kernel
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.applications import INDUSTRIAL_AUTOMATION
from repro.traffic.shaping import align_periodic


def main() -> None:
    workload = INDUSTRIAL_AUTOMATION
    print(f"Workload: {workload.name}, {workload.payload_bytes}-byte "
          f"commands every {workload.period_us:g} µs")
    print(f"Requirement: {workload.requirement}\n")

    # ------------------------------------------------------------------
    # 1-2. Budget analysis per radio-head option.
    # ------------------------------------------------------------------
    print("Worst-case one-way budget for DM + grant-free UL (§5's "
          "feasible design):")
    options = {
        "USB SDR (testbed)": 300.0,   # per-direction RH latency, µs
        "PCIe SDR": 25.0,
        "ASIC radio": 5.0,
    }
    for label, radio_us in options.items():
        profile = SystemProfile(gnb_radio_us=radio_us, ue_radio_us=20.0)
        breakdown = worst_case_budget(minimal_dm(), Direction.UL,
                                      AccessMode.GRANT_FREE, profile)
        verdict = ("FEASIBLE" if breakdown.total_us <= 500.0
                   else "infeasible")
        print(f"  {label:<20} {breakdown.total_us:7.1f} µs "
              f"(bottleneck: {breakdown.bottleneck():<10}) → {verdict}")

    # ------------------------------------------------------------------
    # 3. Simulate the control loop on a ladder of deployments.
    #
    # DM's protocol-only worst case is *exactly* 0.5 ms (Fig 4), so the
    # budget has zero slack: every microsecond of processing or radio
    # latency converts directly into deadline misses.  The ladder shows
    # how close each hardware/software tier gets — the paper's
    # conclusion that URLLC needs "very specific circumstances with
    # stringent hardware and software conditions".
    # ------------------------------------------------------------------
    arrivals = workload.arrivals(
        2_000, tc_from_ms(2_000), RngRegistry(7).stream("arrivals"))
    deployments = {
        "USB SDR + stock kernel (testbed tier)": RanConfig(
            access=AccessMode.GRANT_FREE,
            gnb_radio_head=RadioHead("b210", usb3(), gpos()),
            ue_processing_scale=1.0,
            payload_bytes=workload.payload_bytes, seed=43),
        "PCIe SDR + RT kernel": RanConfig(
            access=AccessMode.GRANT_FREE,
            gnb_radio_head=RadioHead("pcie-sdr", pcie(), rt_kernel(),
                                     rf_chain_us=5.0),
            ue_processing_scale=1.0,
            payload_bytes=workload.payload_bytes, seed=42),
        "ASIC-grade stack (paper footnote 1)": RanConfig(
            access=AccessMode.GRANT_FREE,
            gnb_radio_head=RadioHead("asic", pcie(), rt_kernel(),
                                     rf_chain_us=2.0),
            ue_processing_scale=0.02,
            gnb_processing_scale=0.02,
            payload_bytes=workload.payload_bytes, seed=41),
    }
    print("\nSimulating 2 000 control packets per deployment "
          "(DM, grant-free UL):")
    for label, config in deployments.items():
        system = RanSystem(minimal_dm(), config)
        probe = system.run_uplink(arrivals)
        print(f"\n  {label}")
        print(f"    {probe.summary()}")
        print(f"    {assess(probe, workload.requirement)}")

    # ------------------------------------------------------------------
    # 4. The missing ingredient: a 1 kHz loop is isochronous, so it can
    # be *phase-aligned* with the TDD pattern — generate each command
    # shortly before the UL region opens instead of at the worst phase.
    # ------------------------------------------------------------------
    scheme = minimal_dm()
    aligned = align_periodic(arrivals, scheme, Direction.UL,
                             headroom_tc=tc_from_us(90.0))
    system = RanSystem(minimal_dm(),
                       deployments["ASIC-grade stack (paper footnote 1)"])
    probe = system.run_uplink(aligned)
    print("\n  ASIC-grade stack + traffic phase-aligned to the "
          "UL region")
    print(f"    {probe.summary()}")
    print(f"    {assess(probe, workload.requirement)}")
    print("\n→ the feasible design's protocol budget has zero slack: "
          "URLLC at 0.5 ms needs\n  ASIC-grade processing AND "
          "pattern-aware traffic placement — \"very specific\n  "
          "circumstances with stringent hardware and software "
          "conditions\" (§10).")


if __name__ == "__main__":
    main()
